//! The batched serving loop.

use std::collections::VecDeque;

use mga_core::model::{FusionModel, PreparedBatch};
use mga_graph::ProGraph;
use mga_nn::arena::Arena;

use crate::cache::EmbeddingCache;
use crate::plan::{InferencePlan, Precision};

/// Batching policy for the serving loop. Time is *logical*: the engine
/// never reads a wall clock, so a given submit/tick script always forms
/// the same micro-batches — batching decisions are replayable in tests
/// and across machines.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dispatch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Dispatch a partial batch once its oldest request has waited this
    /// many ticks (0 = dispatch on the next tick).
    pub max_wait_ticks: u64,
    /// Static-embedding cache capacity (distinct kernels resident).
    pub cache_capacity: usize,
    /// Weight precision the plan is compiled at. Quantized precisions
    /// are approximate — gate them on argmax parity before serving.
    pub precision: Precision,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 8,
            max_wait_ticks: 2,
            cache_capacity: 64,
            precision: Precision::F32,
        }
    }
}

/// One inference request: which kernel, and its dynamic (auxiliary)
/// feature row as measured for this input.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: u64,
    /// Kernel id — index into the engine's graph/vector catalog and the
    /// embedding-cache key.
    pub kernel: usize,
    /// Raw dynamic features; scaled (or imputed) by the plan.
    pub aux: Vec<f32>,
}

/// A completed request: the predicted class per head, plus the logical
/// ticks bounding its time in the engine (queue wait + service, in
/// ticks, is `completed_tick - enqueued_tick`).
#[derive(Debug, Clone)]
pub struct Response {
    pub id: u64,
    pub classes: Vec<usize>,
    pub enqueued_tick: u64,
    pub completed_tick: u64,
}

struct Pending {
    req: Request,
    enqueued_tick: u64,
}

/// The serving engine: a frozen [`InferencePlan`], the per-kernel
/// [`EmbeddingCache`], and a deterministic micro-batching queue.
///
/// The hot path is allocation-free in the steady state: scratch matrices
/// cycle through an [`Arena`] (always sized for `max_batch`, so the
/// size classes never change), responses are recycled via
/// [`Engine::recycle`], and the cache's storage is fixed at
/// construction. Kernels unseen at compile time take a slow path that
/// computes their static embedding on first use and caches it — the
/// paper's unseen-kernel scenario (Fig. 6) costs one GNN+DAE pass, then
/// serves at cached speed.
pub struct Engine<'a> {
    plan: InferencePlan,
    cache: EmbeddingCache,
    model: &'a FusionModel,
    graphs: &'a [ProGraph],
    vectors: &'a [Vec<f32>],
    cfg: ServeConfig,
    tick: u64,
    queue: VecDeque<Pending>,
    completed: VecDeque<Response>,
    spare: Vec<Response>,
    arena: Arena,
    /// Reusable class-decision buffer (`max_batch × num_heads`).
    cls: Vec<usize>,
    /// Arena bytes after construction prewarm; anything above this was
    /// allocated post-warmup and is reported as `serve.steady_alloc_bytes`.
    alloc_baseline: u64,
}

impl<'a> Engine<'a> {
    /// Compile `model` into a plan and set up the serving state.
    /// `graphs` and `vectors` are the kernel catalog the slow path
    /// consults for cache misses (indexed by `Request::kernel`).
    pub fn new(
        model: &'a FusionModel,
        graphs: &'a [ProGraph],
        vectors: &'a [Vec<f32>],
        cfg: ServeConfig,
    ) -> Engine<'a> {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let plan = InferencePlan::compile_with(model, cfg.precision);
        let cache = EmbeddingCache::new(cfg.cache_capacity, plan.static_dim());
        let mut arena = Arena::new();
        // Prewarm every scratch size class (single-request and batch)
        // so the first dispatch already runs on recycled buffers and the
        // post-baseline allocation count stays at zero.
        let b = cfg.max_batch;
        for len in [
            plan.in_dim(),
            plan.hidden(),
            plan.max_classes(),
            b * plan.in_dim(),
            b * plan.hidden(),
            b * plan.max_classes(),
        ] {
            let buf = arena.take(len);
            arena.give(buf);
        }
        let alloc_baseline = arena.alloc_bytes();
        let reserve = 4 * b + 64;
        let cls = vec![0usize; b * plan.num_heads()];
        Engine {
            plan,
            cache,
            model,
            graphs,
            vectors,
            cfg,
            tick: 0,
            queue: VecDeque::with_capacity(reserve),
            completed: VecDeque::with_capacity(reserve),
            spare: Vec::with_capacity(reserve),
            arena,
            cls,
            alloc_baseline,
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// The static-embedding cache (read-only; mutate via [`Engine::warm`]
    /// or by serving).
    pub fn cache(&self) -> &EmbeddingCache {
        &self.cache
    }

    /// Current logical tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Requests queued but not yet dispatched.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Warm the cache from a training-side [`PreparedBatch`]; see
    /// [`EmbeddingCache::warm`].
    pub fn warm(&mut self, prep: &PreparedBatch) -> usize {
        self.cache.warm(self.model, prep)
    }

    /// Enqueue a request at the current tick.
    pub fn submit(&mut self, req: Request) {
        mga_obs::metrics::counter("serve.requests").inc();
        self.queue.push_back(Pending {
            req,
            enqueued_tick: self.tick,
        });
    }

    /// Advance logical time by one tick and dispatch every micro-batch
    /// the policy allows: full batches immediately, partial batches once
    /// their oldest request has waited `max_wait_ticks`. Returns the
    /// number of requests completed this tick ([`Engine::drain`] them).
    pub fn tick(&mut self) -> usize {
        self.tick += 1;
        let mut done = 0;
        while self.should_dispatch() {
            done += self.dispatch();
        }
        mga_obs::metrics::gauge("serve.queue_depth").set(self.queue.len() as f64);
        done
    }

    fn should_dispatch(&self) -> bool {
        if self.queue.len() >= self.cfg.max_batch {
            return true;
        }
        match self.queue.front() {
            Some(p) => {
                self.tick - p.enqueued_tick >= self.cfg.max_wait_ticks
                    && self.tick > p.enqueued_tick
            }
            None => false,
        }
    }

    /// Dispatch everything still queued, regardless of wait policy
    /// (shutdown / end-of-stream). Does not advance the tick.
    pub fn flush(&mut self) -> usize {
        let mut done = 0;
        while !self.queue.is_empty() {
            done += self.dispatch();
        }
        mga_obs::metrics::gauge("serve.queue_depth").set(0.0);
        done
    }

    /// Move completed responses (in completion order) into `out`;
    /// returns how many were moved.
    pub fn drain(&mut self, out: &mut Vec<Response>) -> usize {
        let n = self.completed.len();
        out.extend(self.completed.drain(..));
        n
    }

    /// Return a finished [`Response`] so its buffers are reused instead
    /// of reallocated — keeps the steady state allocation-free.
    pub fn recycle(&mut self, resp: Response) {
        if self.spare.len() < self.spare.capacity() {
            self.spare.push(resp);
        }
    }

    /// Ensure `kernel`'s static embedding is resident, taking the slow
    /// path (full GNN + DAE + scaler pass on the catalog entry) on a
    /// miss.
    fn ensure_static(&mut self, kernel: usize) {
        if self.cache.lookup(kernel).is_none() {
            let emb = self
                .model
                .static_embedding(&self.graphs[kernel], &self.vectors[kernel]);
            self.cache.insert(kernel, &emb);
        }
    }

    /// Run one micro-batch off the front of the queue.
    fn dispatch(&mut self) -> usize {
        let b = self.queue.len().min(self.cfg.max_batch);
        debug_assert!(b > 0);
        let in_dim = self.plan.in_dim();
        let sd = self.plan.static_dim();
        let nh = self.plan.num_heads();
        let mut x = self.arena.take(self.cfg.max_batch * in_dim);
        for r in 0..b {
            let kernel = self.queue[r].req.kernel;
            self.ensure_static(kernel);
            let row = &mut x[r * in_dim..(r + 1) * in_dim];
            row[..sd].copy_from_slice(self.cache.peek(kernel).expect("just ensured"));
            let aux = &self.queue[r].req.aux;
            self.plan.scale_aux_into(&mut row[sd..], aux);
        }
        let mut h = self.arena.take(self.cfg.max_batch * self.plan.hidden());
        let mut lg = self
            .arena
            .take(self.cfg.max_batch * self.plan.max_classes());
        let mut cls = std::mem::take(&mut self.cls);
        self.plan.forward_into(&x, b, &mut h, &mut lg, &mut cls);
        for r in 0..b {
            let p = self.queue.pop_front().expect("b <= queue.len()");
            let mut resp = self.spare.pop().unwrap_or_else(|| Response {
                id: 0,
                classes: Vec::with_capacity(nh),
                enqueued_tick: 0,
                completed_tick: 0,
            });
            resp.id = p.req.id;
            resp.enqueued_tick = p.enqueued_tick;
            resp.completed_tick = self.tick;
            resp.classes.clear();
            resp.classes.extend_from_slice(&cls[r * nh..(r + 1) * nh]);
            self.completed.push_back(resp);
        }
        self.cls = cls;
        self.arena.give(lg);
        self.arena.give(h);
        self.arena.give(x);
        mga_obs::metrics::counter("serve.batches").inc();
        mga_obs::metrics::counter("serve.batched_requests").add(b as u64);
        b
    }

    /// Synchronous single-request fast path (no queue, no ticks): write
    /// the predicted class of each head into `classes_out` (length
    /// `num_heads`). This is what the `serve_one_request` benchmark
    /// times — cache lookup, aux scaling, trunk and heads.
    pub fn serve_one(&mut self, kernel: usize, aux: &[f32], classes_out: &mut [usize]) {
        debug_assert_eq!(classes_out.len(), self.plan.num_heads());
        let in_dim = self.plan.in_dim();
        let sd = self.plan.static_dim();
        self.ensure_static(kernel);
        let mut x = self.arena.take(in_dim);
        x[..sd].copy_from_slice(self.cache.peek(kernel).expect("just ensured"));
        self.plan.scale_aux_into(&mut x[sd..], aux);
        let mut h = self.arena.take(self.plan.hidden());
        let mut lg = self.arena.take(self.plan.max_classes());
        self.plan.forward_into(&x, 1, &mut h, &mut lg, classes_out);
        self.arena.give(lg);
        self.arena.give(h);
        self.arena.give(x);
        mga_obs::metrics::counter("serve.requests").inc();
    }

    /// Arena bytes allocated since the construction prewarm — zero in a
    /// healthy steady state (all scratch recycled).
    pub fn steady_alloc_bytes(&self) -> u64 {
        self.arena.alloc_bytes() - self.alloc_baseline
    }

    /// Times a scratch buffer was served from the arena free lists
    /// instead of the allocator.
    pub fn arena_reuse(&self) -> u64 {
        self.arena.reuse_count()
    }

    /// Publish the engine's allocation and queue gauges to the metrics
    /// registry: `serve.steady_alloc_bytes` (arena bytes allocated after
    /// the construction prewarm — zero in a healthy steady state),
    /// `serve.arena_reuse` (scratch recycles) and `serve.queue_depth`.
    pub fn publish_metrics(&self) {
        mga_obs::metrics::gauge("serve.steady_alloc_bytes")
            .set((self.arena.alloc_bytes() - self.alloc_baseline) as f64);
        mga_obs::metrics::gauge("serve.arena_reuse").set(self.arena.reuse_count() as f64);
        mga_obs::metrics::gauge("serve.queue_depth").set(self.queue.len() as f64);
    }
}
