//! The persistent-worker data plane: one thread per shard, fed by
//! lock-free SPSC rings.
//!
//! The inline plane (PR 8) forked the worker pool once per cluster tick
//! and joined it before returning — a barrier per tick, paid even when
//! most shards had nothing to dispatch. This module replaces that with
//! one *persistent* thread per shard. The caller streams commands
//! (`Submit` / `Tick` / `Flush`) through a bounded [`mga_nn::spsc`]
//! intake ring; completed [`Response`]s come back through a response
//! ring; the worker runs ahead independently between synchronization
//! epochs. No barrier: shard 0 can be three ticks deep in GEMMs while
//! the caller is still admitting shard 7's traffic.
//!
//! **Determinism.** Bitwise-identical replays survive the new plane
//! because the engine never sees anything but its command stream, and
//! the stream is byte-for-byte what the inline plane would have executed
//! synchronously: submits in admission order, a `Tick` only when the
//! inline plane would have called `engine.tick()` (live, unstalled), a
//! `Flush` per inline `engine.flush()`. Commands are FIFO per shard, so
//! `enqueued_tick` / `completed_tick` / batch formation — and therefore
//! every response byte — are identical. The chaos suite replays whole
//! failure scenarios across both planes and compares checksums.
//!
//! **The queue mirror.** Admission decides from queue depths, but the
//! engine's queue now lives ticks ahead on another thread. Instead of
//! synchronizing per submit (which would re-create the barrier), the
//! caller keeps a [`QueueMirror`] per shard: a replica of the engine's
//! queue driven by the *same* policy function
//! ([`crate::engine::dispatch_due`]) over the same command stream. The
//! mirror at caller time T equals the engine's queue after it processes
//! every command issued up to T — exactly the state the inline plane
//! would have read — so admission, overflow retry and `tick()` return
//! values are plane-invariant. `Cluster::drain` checks the mirror
//! against the quiesced engine in debug builds.
//!
//! **Quiescence.** The caller counts commands issued; the worker
//! publishes commands consumed (release-stored after all engine access
//! for that command). `consumed == issued` means the worker is idle and
//! the engine is safe to touch from the caller — the sync epochs are
//! drain, evacuation (`kill_shard`), plan swap, `engine()` /
//! `engine_mut()` access and metrics publication. Between epochs the
//! caller never touches the engine.
//!
//! **No deadlock, no loss.** The worker never blocks: when the response
//! ring is full, completions simply stay in the engine's own unbounded
//! `completed` deque and move over on a later command or at drain. The
//! caller's only wait is intake backpressure (ring full), which the
//! always-draining worker resolves. Aux rows ride a slab indexed in
//! lockstep with the submit stream, so the hot intake path allocates
//! nothing in either plane.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};

use mga_nn::aligned::{AlignedVec, CachePadded};
use mga_nn::spsc;
use mga_obs::clock;

use crate::engine::{dispatch_due, Engine, Response, ServeConfig};

/// One data-plane command. The stream a worker consumes is exactly the
/// call sequence the inline plane would have made on its engine.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Cmd {
    /// `engine.submit_slice(id, kernel, aux)`; the aux row travels in
    /// the slab slot paired with this command (none when `degenerate`).
    Submit {
        id: u64,
        kernel: u32,
        /// The caller-provided aux had the wrong width. The plan imputes
        /// every wrong-width row identically (`scale_aux_into`), so the
        /// payload is not transported — the worker substitutes a
        /// canonical wrong-width slice.
        degenerate: bool,
    },
    /// `engine.tick()` — issued only when the shard is live and
    /// unstalled, mirroring the inline dispatch filter.
    Tick,
    /// `engine.flush()`.
    Flush,
}

/// Fixed-width aux rows for in-flight `Submit` commands, written by the
/// caller before the command is published and read by the worker when it
/// pops it. Row indices advance in lockstep with the submit stream on
/// both sides; the intake ring's in-flight bound (`issued - consumed <
/// capacity`, enforced by [`ShardChannel::wait_room`]) guarantees a row
/// is never rewritten before the worker has copied it into the engine.
struct AuxSlab {
    data: UnsafeCell<AlignedVec>,
    width: usize,
    rows: usize,
}

// Safety: rows are single-writer/single-reader under the ring protocol —
// the caller only writes a row before publishing its command (release
// store on the ring tail), the worker only reads it after popping that
// command (acquire load), and the in-flight bound prevents reuse races.
unsafe impl Send for AuxSlab {}
unsafe impl Sync for AuxSlab {}

impl AuxSlab {
    fn new(rows: usize, width: usize) -> AuxSlab {
        AuxSlab {
            data: UnsafeCell::new(AlignedVec::zeroed(rows * width)),
            width,
            rows,
        }
    }

    /// Safety: caller owns row `r` per the ring protocol (it is the next
    /// unpublished submit slot).
    unsafe fn write_row(&self, r: usize, src: &[f32]) {
        debug_assert_eq!(src.len(), self.width);
        let base = (*self.data.get()).as_ptr() as *mut f32;
        std::ptr::copy_nonoverlapping(src.as_ptr(), base.add(r * self.width), self.width);
    }

    /// Safety: worker owns row `r` per the ring protocol (its command
    /// was popped and its slot cannot be rewritten until consumed).
    unsafe fn row(&self, r: usize) -> &[f32] {
        let base = (*self.data.get()).as_ptr();
        std::slice::from_raw_parts(base.add(r * self.width), self.width)
    }
}

/// Cross-thread shard-worker state: the quiesce counter, park/shutdown
/// flags and observational telemetry.
pub(crate) struct WorkerShared {
    /// Commands fully processed (all engine access done). Release-stored
    /// by the worker; `consumed == issued` is the caller's license to
    /// touch the engine.
    pub consumed: CachePadded<AtomicU64>,
    /// Worker is parked (or about to park); the caller unparks after a
    /// push that observes this.
    pub parked: AtomicBool,
    pub shutdown: AtomicBool,
    /// `engine.drift_events().len()` after the last processed command —
    /// the caller's eventually-consistent drift view for health refresh
    /// (observational only; admission never reads health directly).
    pub drift_len: AtomicUsize,
    /// Commands processed (utilization denominator-ish; dashboards).
    pub cmds: AtomicU64,
    /// Times the worker parked (idle episodes).
    pub parks: AtomicU64,
    /// Wall ns spent processing commands (telemetry only).
    pub busy_ns: AtomicU64,
    /// Wall ns at worker start (telemetry only).
    pub start_ns: AtomicU64,
}

/// Caller-side replica of one shard engine's queue, driven by the same
/// command stream and the same policy function the engine runs
/// ([`dispatch_due`]) — including the staged-swap clamp. Gives
/// admission exact, plane-invariant queue depths without synchronizing.
#[derive(Debug, Default)]
pub(crate) struct QueueMirror {
    /// The engine's own tick (number of `Tick` commands issued to it).
    etick: u64,
    /// Enqueue tick (engine time) of each queued request, FIFO.
    queue: VecDeque<u64>,
    /// Staged-swap drain barrier: batches never exceed the pre-swap
    /// backlog until it hits zero (mirrors `Engine::dispatch`).
    staged: bool,
    old_pending: usize,
}

impl QueueMirror {
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    fn submit(&mut self) {
        self.queue.push_back(self.etick);
    }

    fn pop_batch(&mut self, max_batch: usize) -> usize {
        let mut b = self.queue.len().min(max_batch);
        if self.staged {
            b = b.min(self.old_pending);
        }
        debug_assert!(b > 0);
        for _ in 0..b {
            self.queue.pop_front();
        }
        if self.staged {
            self.old_pending -= b;
            if self.old_pending == 0 {
                self.staged = false;
            }
        }
        b
    }

    fn on_tick(&mut self, cfg: &ServeConfig) -> usize {
        self.etick += 1;
        let mut done = 0;
        while dispatch_due(
            self.queue.len(),
            self.queue.front().copied(),
            self.etick,
            cfg,
        )
        .is_some()
        {
            done += self.pop_batch(cfg.max_batch);
        }
        done
    }

    fn flush(&mut self, cfg: &ServeConfig) -> usize {
        let mut done = 0;
        while !self.queue.is_empty() {
            done += self.pop_batch(cfg.max_batch);
        }
        self.staged = false;
        self.old_pending = 0;
        done
    }

    /// `Engine::evacuate`: queue emptied, staged swap installs.
    pub fn evacuate(&mut self) {
        self.queue.clear();
        self.staged = false;
        self.old_pending = 0;
    }

    /// `Engine::swap_plan`: the current backlog drains on the old plan.
    pub fn stage_swap(&mut self) {
        self.old_pending = self.queue.len();
        self.staged = self.old_pending > 0;
    }
}

/// `*mut Engine` that crosses into the worker thread. The worker is the
/// engine's sole user between quiesce epochs, and `Cluster`'s `Drop`
/// joins it before the shard vector (and anything the engine borrows)
/// can go away.
struct EnginePtr(*mut ());
unsafe impl Send for EnginePtr {}

/// How many empty polls before the worker parks. Short: an idle shard
/// should cost a futex wait, not a spinning core — and on a single-core
/// box spinning only delays the producer.
const SPIN_BUDGET: u32 = 256;

/// The caller's handle to one shard worker: intake/response rings, the
/// quiesce counters and the queue mirror.
pub(crate) struct ShardChannel {
    intake: spsc::Producer<Cmd>,
    pub responses: spsc::Consumer<Response>,
    slab: Arc<AuxSlab>,
    pub shared: Arc<WorkerShared>,
    thread: Thread,
    join: Option<JoinHandle<()>>,
    /// Commands issued (caller-local; `consumed` catches up to it).
    issued: u64,
    write_row: usize,
    pub mirror: QueueMirror,
}

impl ShardChannel {
    /// Spawn the worker for `engine`. Safety contract (upheld by
    /// `Cluster`): the engine must stay at this address for the worker's
    /// lifetime (it lives in a never-reallocated `Vec`), the caller must
    /// only touch it at quiesce points, and the worker must be joined
    /// before the engine (or its borrows) are dropped.
    pub fn spawn(
        engine: *mut Engine<'_>,
        aux_dim: usize,
        capacity: usize,
        telemetry: bool,
        shard: usize,
    ) -> ShardChannel {
        let (intake_tx, intake_rx) = spsc::ring::<Cmd>(capacity);
        let cap = intake_tx.capacity();
        let (resp_tx, resp_rx) = spsc::ring::<Response>(cap);
        let slab = Arc::new(AuxSlab::new(cap, aux_dim));
        let shared = Arc::new(WorkerShared {
            consumed: CachePadded::new(AtomicU64::new(0)),
            parked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            drift_len: AtomicUsize::new(0),
            cmds: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
        });
        let ptr = EnginePtr(engine as *mut ());
        let worker_slab = Arc::clone(&slab);
        let worker_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name(format!("mga-shard-{shard}"))
            .spawn(move || {
                worker_main(
                    ptr,
                    intake_rx,
                    resp_tx,
                    worker_slab,
                    worker_shared,
                    telemetry,
                )
            })
            .expect("spawn shard worker");
        let thread = join.thread().clone();
        ShardChannel {
            intake: intake_tx,
            responses: resp_rx,
            slab,
            shared,
            thread,
            join: Some(join),
            issued: 0,
            write_row: 0,
            mirror: QueueMirror::default(),
        }
    }

    /// Intake backpressure: keep strictly fewer than `capacity` commands
    /// in flight. This bounds ring occupancy *and* slab-row reuse (a row
    /// is only rewritten `capacity` submits later, by which time its
    /// command was consumed). The worker always drains, so this
    /// terminates; unparking inside the loop is lost-wakeup insurance.
    fn wait_room(&mut self) {
        let cap = self.intake.capacity() as u64;
        while self.issued - self.shared.consumed.load(Ordering::Acquire) >= cap {
            self.thread.unpark();
            std::thread::yield_now();
        }
    }

    /// Publish a command (room must already be ensured).
    fn push_ready(&mut self, cmd: Cmd) {
        let pushed = self.intake.try_push(cmd).is_ok();
        debug_assert!(pushed, "wait_room guaranteed a slot");
        self.issued += 1;
        if self.shared.parked.load(Ordering::SeqCst) {
            self.thread.unpark();
        }
    }

    /// Stream one admission. Wrong-width aux rows are not transported:
    /// the plan imputes every wrong-width row identically, so the worker
    /// substitutes a canonical wrong-width slice (bitwise-equal result).
    pub fn submit(&mut self, id: u64, kernel: usize, aux: &[f32]) {
        self.wait_room();
        let degenerate = aux.len() != self.slab.width;
        if !degenerate {
            // Safety: `write_row` is the next unpublished submit slot
            // and `wait_room` bounded the in-flight window.
            unsafe { self.slab.write_row(self.write_row, aux) };
            self.write_row = if self.write_row + 1 == self.slab.rows {
                0
            } else {
                self.write_row + 1
            };
        }
        self.push_ready(Cmd::Submit {
            id,
            kernel: kernel as u32,
            degenerate,
        });
        self.mirror.submit();
    }

    /// Stream one engine tick; returns the mirror's dispatch count —
    /// exactly what the engine will complete for this command.
    pub fn tick(&mut self, cfg: &ServeConfig) -> usize {
        self.wait_room();
        self.push_ready(Cmd::Tick);
        self.mirror.on_tick(cfg)
    }

    /// Stream one engine flush; returns the mirror's dispatch count.
    pub fn flush(&mut self, cfg: &ServeConfig) -> usize {
        self.wait_room();
        self.push_ready(Cmd::Flush);
        self.mirror.flush(cfg)
    }

    /// Wait until the worker has processed every issued command. On
    /// return the engine is caller-safe until the next command is
    /// pushed.
    pub fn quiesce(&self) {
        while self.shared.consumed.load(Ordering::Acquire) < self.issued {
            self.thread.unpark();
            std::thread::yield_now();
        }
    }

    /// Intake-ring occupancy (dashboards).
    pub fn occupancy(&self) -> usize {
        self.intake.len()
    }

    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.thread.unpark();
    }

    pub fn join(&mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Shutdown rides the channel's own `Drop` (the type is lifetime-free)
/// rather than a `Drop` on `Cluster`, which would force every borrow
/// handed to the cluster to strictly outlive it under dropck. The worker
/// dereferences a raw engine pointer until it observes `shutdown`, so
/// the join here must complete before the engine is freed — guaranteed
/// by `Shard`'s field order in `cluster.rs`.
impl Drop for ShardChannel {
    fn drop(&mut self) {
        self.begin_shutdown();
        self.join();
    }
}

/// The worker loop: pop a command, apply it to the engine, move
/// completions into the response ring (leftovers stay in the engine's
/// unbounded deque when the ring is full — never block), publish the
/// consumed counter. Idle: spin briefly, then park.
fn worker_main(
    engine: EnginePtr,
    mut intake: spsc::Consumer<Cmd>,
    mut responses: spsc::Producer<Response>,
    slab: Arc<AuxSlab>,
    shared: Arc<WorkerShared>,
    telemetry: bool,
) {
    // Safety: the engine outlives this thread (joined by `Cluster::drop`
    // before the shard vector drops) and is only touched from here
    // between quiesce epochs. The 'static is a lie the join makes true.
    let engine: &mut Engine<'static> = unsafe { &mut *(engine.0 as *mut Engine<'static>) };
    if telemetry {
        shared.start_ns.store(clock::now_ns(), Ordering::Relaxed);
    }
    let mut consumed = 0u64;
    let mut read_row = 0usize;
    let mut spins = 0u32;
    loop {
        let Some(cmd) = intake.try_pop() else {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            spins += 1;
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
                std::thread::yield_now();
                continue;
            }
            shared.parked.store(true, Ordering::SeqCst);
            // Re-check after publishing `parked`: a push that missed the
            // flag has already landed in the ring.
            if !intake.is_empty() || shared.shutdown.load(Ordering::Acquire) {
                shared.parked.store(false, Ordering::SeqCst);
                continue;
            }
            shared.parks.fetch_add(1, Ordering::Relaxed);
            std::thread::park();
            shared.parked.store(false, Ordering::SeqCst);
            spins = 0;
            continue;
        };
        spins = 0;
        let t0 = if telemetry { clock::now_ns() } else { 0 };
        match cmd {
            Cmd::Submit {
                id,
                kernel,
                degenerate,
            } => {
                let aux: &[f32] = if degenerate {
                    // Any wrong-width slice imputes identically; cover
                    // the width-0 plan too.
                    if slab.width == 0 {
                        &[0.0]
                    } else {
                        &[]
                    }
                } else {
                    // Safety: this command's row; see AuxSlab.
                    let row = unsafe { slab.row(read_row) };
                    read_row = if read_row + 1 == slab.rows {
                        0
                    } else {
                        read_row + 1
                    };
                    row
                };
                let admitted = engine.submit_slice(id, kernel as usize, aux);
                debug_assert!(
                    admitted.is_ok(),
                    "cluster admission checked kernel and room"
                );
                let _ = admitted;
            }
            Cmd::Tick => {
                engine.tick();
            }
            Cmd::Flush => {
                engine.flush();
            }
        }
        while responses.len() < responses.capacity() {
            match engine.pop_completed() {
                Some(r) => {
                    let pushed = responses.try_push(r).is_ok();
                    debug_assert!(pushed, "room was checked");
                }
                None => break,
            }
        }
        shared
            .drift_len
            .store(engine.drift_events().len(), Ordering::Relaxed);
        shared.cmds.fetch_add(1, Ordering::Relaxed);
        if telemetry {
            shared
                .busy_ns
                .fetch_add(clock::now_ns().saturating_sub(t0), Ordering::Relaxed);
        }
        consumed += 1;
        shared.consumed.store(consumed, Ordering::Release);
    }
}
