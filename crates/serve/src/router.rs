//! Consistent-hash request routing.
//!
//! Requests are keyed by kernel id, and each shard's
//! [`crate::EmbeddingCache`] only stays hot if the same kernels keep
//! landing on the same shard. A consistent-hash ring gives exactly
//! that, plus two properties a plain `kernel % N` cannot:
//!
//! * **stability under resize** — going from N to N+1 shards moves only
//!   ~K/(N+1) of K keys (the proptest in `tests/cluster_chaos.rs` holds
//!   the ring to a bound), so a scale-up does not flush every cache;
//! * **deterministic failover** — when a shard goes down, each of its
//!   keys falls to the next healthy shard *clockwise on the ring*, a
//!   pure function of (key, healthy-set). Replaying a failure scenario
//!   reroutes identically, which is what makes the chaos suite's
//!   bitwise-replay assertion possible.
//!
//! The ring is `vnodes` virtual points per shard (default 64) hashed
//! with the same splitmix64 mix the fault module uses; lookups are a
//! binary search. No wall clocks, no RNG at lookup time.

/// The splitmix64 finalizer — a cheap, well-distributed 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Consistent-hash ring over shard indices `0..shards`.
pub struct Router {
    /// (ring position, shard) sorted by position.
    points: Vec<(u64, u32)>,
    shards: usize,
}

/// Virtual ring points per shard — enough that per-shard load imbalance
/// stays within ~20% while keeping the ring a few hundred entries.
pub const DEFAULT_VNODES: usize = 64;

impl Router {
    /// A ring of `shards` shards with `vnodes` virtual points each.
    pub fn new(shards: usize, vnodes: usize) -> Router {
        assert!(shards > 0, "router needs at least one shard");
        assert!(vnodes > 0, "router needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for replica in 0..vnodes {
                // Mix shard and replica into one well-spread point; the
                // odd multiplier decorrelates (shard, replica) pairs.
                let h = mix64(
                    (shard as u64).wrapping_mul(0x9E3779B97F4A7C15)
                        ^ (replica as u64).wrapping_mul(0xD1B54A32D192ED03),
                );
                points.push((h, shard as u32));
            }
        }
        points.sort_unstable();
        Router { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `kernel`: the first ring point at or after the
    /// key's hash, wrapping.
    pub fn route(&self, kernel: usize) -> usize {
        self.points[self.first_point(kernel)].1 as usize
    }

    /// The owning shard, skipping shards for which `down` returns true:
    /// walk the ring clockwise from the key's hash until a live shard's
    /// point appears. Returns `None` when every shard is down. This is
    /// the failover order — deterministic in (kernel, down-set).
    pub fn route_live(&self, kernel: usize, down: impl Fn(usize) -> bool) -> Option<usize> {
        let start = self.first_point(kernel);
        let n = self.points.len();
        for i in 0..n {
            let shard = self.points[(start + i) % n].1 as usize;
            if !down(shard) {
                return Some(shard);
            }
        }
        None
    }

    /// Visit every ring point once, clockwise from `kernel`'s hash,
    /// yielding each point's shard (with repeats — callers dedup). This
    /// exposes the full failover order for admission's candidate list.
    pub fn walk(&self, kernel: usize, mut f: impl FnMut(usize)) {
        let start = self.first_point(kernel);
        let n = self.points.len();
        for i in 0..n {
            f(self.points[(start + i) % n].1 as usize);
        }
    }

    fn first_point(&self, kernel: usize) -> usize {
        let h = mix64(kernel as u64 ^ 0xA24BAED4963EE407);
        match self.points.binary_search(&(h, u32::MAX)) {
            Ok(i) => i,
            Err(i) => i % self.points.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = Router::new(4, DEFAULT_VNODES);
        for k in 0..1000 {
            let s = r.route(k);
            assert!(s < 4);
            assert_eq!(s, r.route(k), "same key, same shard");
        }
    }

    #[test]
    fn all_shards_receive_some_keys() {
        let r = Router::new(8, DEFAULT_VNODES);
        let mut hit = [false; 8];
        for k in 0..4096 {
            hit[r.route(k)] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "every shard owns part of the keyspace"
        );
    }

    #[test]
    fn failover_walks_to_next_live_shard() {
        let r = Router::new(3, DEFAULT_VNODES);
        for k in 0..256 {
            let owner = r.route(k);
            // Nothing down: failover equals the plain route.
            assert_eq!(r.route_live(k, |_| false), Some(owner));
            // Owner down: a different, live shard takes the key.
            let fallback = r.route_live(k, |s| s == owner).unwrap();
            assert_ne!(fallback, owner);
            // Everything down: typed None, not a spin.
            assert_eq!(r.route_live(k, |_| true), None);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let r = Router::new(1, 8);
        for k in 0..64 {
            assert_eq!(r.route(k), 0);
        }
    }
}
