//! The per-kernel static-embedding cache.

use std::collections::HashMap;

use mga_core::model::{FusionModel, PreparedBatch};

/// Fixed-capacity cache of fused static-embedding rows, keyed by kernel
/// id. Storage is one flat `capacity × dim` slab allocated up front;
/// eviction is least-recently-used under a *logical* clock (bumped per
/// lookup, never wall time), with ties broken by lowest slot index —
/// fully deterministic, so serving runs replay exactly.
///
/// Hits, misses and evictions are counted in the `mga-obs` registry
/// (`serve.cache_hits` / `serve.cache_misses` / `serve.cache_evictions`).
pub struct EmbeddingCache {
    dim: usize,
    slots: Vec<f32>,
    /// Kernel occupying each slot (`usize::MAX` = free).
    slot_kernel: Vec<usize>,
    slot_last_use: Vec<u64>,
    map: HashMap<usize, usize>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

const FREE: usize = usize::MAX;

impl EmbeddingCache {
    /// A cache holding up to `capacity` embeddings of width `dim`.
    /// All storage — including the key map's table — is allocated here;
    /// the steady state allocates nothing.
    pub fn new(capacity: usize, dim: usize) -> EmbeddingCache {
        assert!(capacity > 0, "cache capacity must be positive");
        EmbeddingCache {
            dim,
            slots: vec![0.0; capacity * dim],
            slot_kernel: vec![FREE; capacity],
            slot_last_use: vec![0; capacity],
            map: HashMap::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Lifetime (hits, misses, evictions) of this cache instance — the
    /// per-instance view of the global `serve.cache_*` counters (which
    /// aggregate across engines in a process).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximum resident embeddings.
    pub fn capacity(&self) -> usize {
        self.slot_kernel.len()
    }

    /// Currently resident embeddings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counted lookup: on a hit, bumps the kernel's recency and returns
    /// its row; on a miss returns `None`. Both outcomes feed the
    /// hit/miss counters.
    pub fn lookup(&mut self, kernel: usize) -> Option<&[f32]> {
        self.clock += 1;
        match self.map.get(&kernel) {
            Some(&slot) => {
                self.hits += 1;
                mga_obs::metrics::counter("serve.cache_hits").inc();
                self.slot_last_use[slot] = self.clock;
                Some(&self.slots[slot * self.dim..(slot + 1) * self.dim])
            }
            None => {
                self.misses += 1;
                mga_obs::metrics::counter("serve.cache_misses").inc();
                None
            }
        }
    }

    /// Uncounted read — does not touch recency or the hit/miss counters.
    pub fn peek(&self, kernel: usize) -> Option<&[f32]> {
        self.map
            .get(&kernel)
            .map(|&slot| &self.slots[slot * self.dim..(slot + 1) * self.dim])
    }

    /// Insert (or overwrite) `kernel`'s embedding row, evicting the
    /// least-recently-used resident if the cache is full.
    pub fn insert(&mut self, kernel: usize, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "embedding width mismatch");
        self.clock += 1;
        let slot = match self.map.get(&kernel) {
            Some(&slot) => slot,
            None => {
                let slot = self.free_or_evict();
                self.map.insert(kernel, slot);
                self.slot_kernel[slot] = kernel;
                slot
            }
        };
        self.slots[slot * self.dim..(slot + 1) * self.dim].copy_from_slice(row);
        self.slot_last_use[slot] = self.clock;
    }

    fn free_or_evict(&mut self) -> usize {
        if let Some(slot) = self.slot_kernel.iter().position(|&k| k == FREE) {
            return slot;
        }
        // Oldest logical use wins; strict `<` keeps the lowest index on
        // ties, so eviction order is deterministic.
        let mut victim = 0usize;
        for (s, &t) in self.slot_last_use.iter().enumerate() {
            if t < self.slot_last_use[victim] {
                victim = s;
            }
        }
        self.evictions += 1;
        mga_obs::metrics::counter("serve.cache_evictions").inc();
        self.map.remove(&self.slot_kernel[victim]);
        self.slot_kernel[victim] = FREE;
        victim
    }

    /// Drop every resident embedding (hot-swap install: the new model's
    /// GNN/DAE weights make cached rows stale). Keeps all storage and
    /// the lifetime counters; the next lookups repopulate via the slow
    /// path or a fresh [`EmbeddingCache::warm`].
    pub fn clear(&mut self) {
        self.map.clear();
        self.slot_kernel.fill(FREE);
        self.slot_last_use.fill(0);
    }

    /// Warm the cache from preparation work already done: inserts one
    /// row per distinct kernel of `prep`, computed by
    /// [`FusionModel::static_embeddings_prepared`]. Returns the number
    /// of rows inserted — 0 when the batch took the degraded graph path
    /// (those rows are batch-dependent means and must not be cached).
    pub fn warm(&mut self, model: &FusionModel, prep: &PreparedBatch) -> usize {
        let rows = match model.static_embeddings_prepared(prep) {
            Some(t) => t,
            None => return 0,
        };
        assert_eq!(rows.cols(), self.dim, "prepared embedding width mismatch");
        for (r, &kernel) in prep.kernels().iter().enumerate() {
            self.insert(kernel, rows.row_slice(r));
        }
        prep.kernels().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest_with_deterministic_ties() {
        let mut c = EmbeddingCache::new(2, 3);
        c.insert(10, &[1.0, 1.0, 1.0]);
        c.insert(20, &[2.0, 2.0, 2.0]);
        assert_eq!(c.len(), 2);
        // Touch 10 so 20 becomes the LRU victim.
        assert!(c.lookup(10).is_some());
        c.insert(30, &[3.0, 3.0, 3.0]);
        assert_eq!(c.len(), 2);
        assert!(c.peek(20).is_none(), "20 was least recently used");
        assert_eq!(c.peek(10).unwrap(), &[1.0, 1.0, 1.0]);
        assert_eq!(c.peek(30).unwrap(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn reinsert_overwrites_in_place() {
        let mut c = EmbeddingCache::new(2, 2);
        c.insert(7, &[1.0, 2.0]);
        c.insert(7, &[3.0, 4.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(7).unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn miss_then_insert_round_trips() {
        let mut c = EmbeddingCache::new(4, 2);
        assert!(c.lookup(1).is_none());
        c.insert(1, &[0.5, -0.5]);
        assert_eq!(c.lookup(1).unwrap(), &[0.5, -0.5]);
    }
}
