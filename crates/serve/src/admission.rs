//! Admission control: decide at the door, shed with a reason.
//!
//! Every request entering the cluster gets an explicit [`Decision`]
//! before it touches a queue: admit to its hash-owning shard, redirect
//! to a live shard when the owner can't take it, or shed with a typed
//! reason. The invariant the chaos suite holds the cluster to — *every
//! accepted request is answered* — only works because acceptance is a
//! single, deterministic choke point: nothing is enqueued that the
//! policy hasn't already decided can finish.
//!
//! Decisions are pure functions of (candidate order, per-shard views,
//! logical tick, deadline). No wall clock, no randomness — replaying a
//! submit/tick script reproduces every admit, redirect and shed
//! bit-for-bit.

use crate::error::ServeError;

/// Admission-time snapshot of one shard, as much as the policy needs.
#[derive(Debug, Clone, Copy)]
pub struct ShardView {
    /// Requests queued and not yet dispatched.
    pub depth: usize,
    /// Bounded intake capacity.
    pub capacity: usize,
    /// Shard cannot take traffic at all (crashed).
    pub down: bool,
    /// Ticks the shard will still refuse to dispatch (injected stall);
    /// queued work waits this long extra.
    pub stall_remaining: u64,
}

/// Why a request was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Owner (and every live fallback) had a full intake queue.
    QueueFull { depth: usize, capacity: usize },
    /// No candidate could finish by the deadline tick.
    Deadline {
        deadline_tick: u64,
        estimated_tick: u64,
    },
    /// Owner is down and no healthy shard could take over.
    ShardDown,
}

/// The admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Enqueue on the hash-owning shard.
    Admit { shard: usize },
    /// Enqueue on a live shard other than the hash owner (owner down or
    /// full, or an injected `route:misdirect`).
    Redirect { from: usize, to: usize },
    /// Refuse at the door; `shard` is the hash owner the refusal is
    /// attributed to.
    Shed { shard: usize, reason: ShedReason },
}

impl ShedReason {
    /// The typed error handed back to the caller.
    pub fn to_error(self, shard: usize) -> ServeError {
        match self {
            ShedReason::QueueFull { depth, capacity } => ServeError::QueueFull {
                shard,
                depth,
                capacity,
            },
            ShedReason::Deadline {
                deadline_tick,
                estimated_tick,
            } => ServeError::DeadlineExceeded {
                deadline_tick,
                estimated_tick,
            },
            ShedReason::ShardDown => ServeError::ShardDown { shard },
        }
    }
}

/// When a request enqueued now at queue depth `depth` (pre-insert) will
/// complete, in cluster ticks. The engine dispatches every *full*
/// micro-batch on the next tick and holds a partial batch until its
/// oldest request has waited `max_wait_ticks` — so a request that fills
/// a batch finishes one tick out, anything else waits the partial-batch
/// timer, and an injected stall delays either by `stall_remaining`.
pub fn estimated_completion_tick(
    now: u64,
    depth: usize,
    max_batch: usize,
    max_wait_ticks: u64,
    stall_remaining: u64,
) -> u64 {
    let service = if depth + 1 >= max_batch {
        1
    } else {
        max_wait_ticks.max(1)
    };
    now + service + stall_remaining
}

/// Decide admission for a request whose hash owner is `owner`.
///
/// `candidates` is the router's deterministic failover order starting at
/// the owner (see `Router::route_live`); the first candidate that is
/// live, has queue room and can meet the deadline wins. When none can,
/// the shed reason is attributed to the owner, most-specific first:
/// a down owner sheds `ShardDown`, a full owner `QueueFull`, otherwise
/// the deadline was the binding constraint.
pub fn decide(
    owner: usize,
    candidates: impl Iterator<Item = usize>,
    views: &[ShardView],
    now: u64,
    deadline_tick: Option<u64>,
    max_batch: usize,
    max_wait_ticks: u64,
) -> Decision {
    for shard in candidates {
        let v = views[shard];
        if v.down || v.depth >= v.capacity {
            continue;
        }
        if let Some(deadline) = deadline_tick {
            let est = estimated_completion_tick(
                now,
                v.depth,
                max_batch,
                max_wait_ticks,
                v.stall_remaining,
            );
            if est > deadline {
                continue;
            }
        }
        return if shard == owner {
            Decision::Admit { shard }
        } else {
            Decision::Redirect {
                from: owner,
                to: shard,
            }
        };
    }
    let v = views[owner];
    let reason = if v.down {
        ShedReason::ShardDown
    } else if v.depth >= v.capacity {
        ShedReason::QueueFull {
            depth: v.depth,
            capacity: v.capacity,
        }
    } else {
        let deadline_tick = deadline_tick.unwrap_or(0);
        ShedReason::Deadline {
            deadline_tick,
            estimated_tick: estimated_completion_tick(
                now,
                v.depth,
                max_batch,
                max_wait_ticks,
                v.stall_remaining,
            ),
        }
    };
    Decision::Shed {
        shard: owner,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(depth: usize) -> ShardView {
        ShardView {
            depth,
            capacity: 16,
            down: false,
            stall_remaining: 0,
        }
    }

    #[test]
    fn healthy_owner_admits() {
        let views = [view(0), view(0)];
        let d = decide(0, [0usize, 1].into_iter(), &views, 10, None, 8, 2);
        assert_eq!(d, Decision::Admit { shard: 0 });
    }

    #[test]
    fn full_owner_redirects_then_sheds() {
        let mut views = [view(16), view(0)];
        let d = decide(0, [0usize, 1].into_iter(), &views, 10, None, 8, 2);
        assert_eq!(d, Decision::Redirect { from: 0, to: 1 });
        views[1].depth = 16;
        let d = decide(0, [0usize, 1].into_iter(), &views, 10, None, 8, 2);
        assert_eq!(
            d,
            Decision::Shed {
                shard: 0,
                reason: ShedReason::QueueFull {
                    depth: 16,
                    capacity: 16
                }
            }
        );
    }

    #[test]
    fn down_owner_fails_over_or_sheds_shard_down() {
        let mut views = [view(0), view(0)];
        views[0].down = true;
        let d = decide(0, [0usize, 1].into_iter(), &views, 10, None, 8, 2);
        assert_eq!(d, Decision::Redirect { from: 0, to: 1 });
        views[1].down = true;
        let d = decide(0, [0usize, 1].into_iter(), &views, 10, None, 8, 2);
        assert_eq!(
            d,
            Decision::Shed {
                shard: 0,
                reason: ShedReason::ShardDown
            }
        );
    }

    #[test]
    fn deadline_sheds_at_the_door() {
        // Partial batch waits max_wait_ticks = 3 → earliest finish is
        // tick 13; a deadline of 12 is unmeetable anywhere.
        let views = [view(0), view(0)];
        let d = decide(0, [0usize, 1].into_iter(), &views, 10, Some(12), 8, 3);
        assert_eq!(
            d,
            Decision::Shed {
                shard: 0,
                reason: ShedReason::Deadline {
                    deadline_tick: 12,
                    estimated_tick: 13
                }
            }
        );
        // A batch-filling depth finishes next tick and makes it.
        let views = [view(7), view(0)];
        let d = decide(0, [0usize, 1].into_iter(), &views, 10, Some(12), 8, 3);
        assert_eq!(d, Decision::Admit { shard: 0 });
    }

    #[test]
    fn stall_pushes_the_estimate_past_the_deadline() {
        let mut views = [view(7), view(0)];
        views[0].stall_remaining = 5;
        // Owner would finish at 10+1+5 = 16 > 12; shard 1 is partial
        // (est 10+3 = 13) — also late; shed, attributed to the owner's
        // deadline estimate.
        let d = decide(0, [0usize, 1].into_iter(), &views, 10, Some(12), 8, 3);
        assert_eq!(
            d,
            Decision::Shed {
                shard: 0,
                reason: ShedReason::Deadline {
                    deadline_tick: 12,
                    estimated_tick: 16
                }
            }
        );
    }
}
