//! The serving flight recorder: a fixed-capacity ring of per-request
//! records.
//!
//! Aggregates (the metrics registry, the latency histograms) answer
//! "how is serving doing"; the flight recorder answers "what exactly
//! happened to the last N requests" — the post-incident view. Every
//! served request appends one [`FlightRecord`] carrying its identity
//! (request id, kernel), its path through the engine (submit/served
//! tick, queue ticks, batch size, cache hit/miss, plan precision,
//! engine-side nanoseconds) and its decision (per-head class + top-1 −
//! top-2 margin, mean confidence).
//!
//! The ring is sized once at engine construction
//! ([`crate::ServeConfig::flight_capacity`]) and records are plain
//! `Copy` structs with fixed-size per-head arrays, so recording is a
//! struct store — **no allocation, ever**, which is what keeps the
//! engine's `steady_alloc_bytes()` at zero with the recorder always on.
//! When the ring is full the oldest record is overwritten; `total()`
//! keeps counting so dumps state how much history was dropped.
//!
//! Dumps are JSONL: one `{"type":"request",...}` line per record in
//! chronological order (oldest surviving first), written on demand
//! ([`FlightRecorder::dump`]) or at end of run to the path named by
//! `MGA_FLIGHT` (`Engine::dump_flight_if_enabled`; empty or `0`
//! disables). The engine appends its buffered drift events as
//! `{"type":"drift",...}` lines after the requests — `validate_trace
//! --flight` checks both shapes.

use std::io::{self, Write};

use mga_obs::drift::DriftEvent;
use mga_obs::json::Json;

/// Render a drift event as the `{"type":"drift",...}` JSONL object the
/// flight dump appends after its request lines.
pub fn drift_event_to_json(e: &DriftEvent) -> Json {
    Json::obj(vec![
        ("type", Json::str("drift")),
        ("kind", Json::str(e.kind.tag())),
        ("tick", Json::Num(e.tick as f64)),
        ("value", Json::Num(e.value)),
        ("raw", Json::Num(e.raw)),
        ("threshold", Json::Num(e.threshold)),
    ])
}

/// Per-head telemetry capacity of a [`FlightRecord`]. Records store
/// classes and margins inline (no heap) so the recorder can be
/// allocation-free; the engine asserts its plan fits at construction.
pub const MAX_FLIGHT_HEADS: usize = 8;

/// What ultimately happened to a request. Served requests come from the
/// shard engines; the cluster's admission recorder additionally logs
/// every shed and redirect so the post-incident view covers refusals,
/// not just answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disposition {
    /// Answered normally by the plan.
    #[default]
    Served,
    /// Admitted, but to a shard other than its hash owner (overflow
    /// spill, down-shard takeover, or an injected `route:misdirect`).
    Redirected,
    /// Requeued onto a surviving shard after its original shard died.
    Rerouted,
    /// Shed at the door: bounded queue full, no redirect target.
    ShedQueueFull,
    /// Shed at the door: deadline unmeetable under the queue estimate.
    ShedDeadline,
    /// Shed at the door: owning shard down, no healthy takeover.
    ShedShardDown,
}

impl Disposition {
    /// Stable lower-snake tag used in JSONL dumps and dashboards.
    pub fn tag(&self) -> &'static str {
        match self {
            Disposition::Served => "served",
            Disposition::Redirected => "redirected",
            Disposition::Rerouted => "rerouted",
            Disposition::ShedQueueFull => "shed_queue_full",
            Disposition::ShedDeadline => "shed_deadline",
            Disposition::ShedShardDown => "shed_shard_down",
        }
    }
}

/// One served request, as remembered by the flight recorder.
#[derive(Debug, Clone, Copy)]
pub struct FlightRecord {
    /// Caller-assigned request id (0 for `serve_one` fast-path calls).
    pub id: u64,
    /// Kernel id (catalog index / cache key).
    pub kernel: u32,
    /// Logical tick the request entered the queue (= served tick for
    /// the synchronous fast path).
    pub submit_tick: u64,
    /// Logical tick the micro-batch containing it was dispatched.
    pub served_tick: u64,
    /// Ticks spent queued (`served_tick - submit_tick`).
    pub queue_ticks: u32,
    /// Size of the micro-batch it was served in (1 for the fast path).
    pub batch: u16,
    /// Why the batch dispatched when it did ([`crate::engine::BatchMode`]
    /// tag: `"full"`, `"wait"`, `"slo_cut"`, `"flush"`; `"sync"` for the
    /// `serve_one` fast path).
    pub batch_mode: &'static str,
    /// Whether its static embedding was already resident (false = the
    /// slow GNN+DAE path ran).
    pub cache_hit: bool,
    /// Weight precision tag of the serving plan (`"f32"`, `"bf16"`,
    /// `"int8"`).
    pub precision: &'static str,
    /// Engine-side wall nanoseconds (submit→response for batched
    /// requests, call duration for the fast path).
    pub e2e_ns: u64,
    /// How the request left the system (served, redirected, shed —
    /// see [`Disposition`]).
    pub disposition: Disposition,
    /// Heads actually populated in `classes` / `margins`.
    pub num_heads: u8,
    /// Predicted class per head.
    pub classes: [u16; MAX_FLIGHT_HEADS],
    /// Top-1 − top-2 logit margin per head (0 for single-class heads).
    pub margins: [f32; MAX_FLIGHT_HEADS],
    /// Mean per-head confidence (sigmoid of margin; 1.0 for
    /// single-class heads) — the signal the confidence drift detector
    /// watches.
    pub confidence: f32,
}

impl Default for FlightRecord {
    fn default() -> FlightRecord {
        FlightRecord {
            id: 0,
            kernel: 0,
            submit_tick: 0,
            served_tick: 0,
            queue_ticks: 0,
            batch: 0,
            batch_mode: "full",
            cache_hit: false,
            precision: "f32",
            e2e_ns: 0,
            disposition: Disposition::Served,
            num_heads: 0,
            classes: [0; MAX_FLIGHT_HEADS],
            margins: [0.0; MAX_FLIGHT_HEADS],
            confidence: 0.0,
        }
    }
}

impl FlightRecord {
    /// Render as the `{"type":"request",...}` JSONL object.
    pub fn to_json(&self) -> Json {
        let nh = self.num_heads as usize;
        Json::obj(vec![
            ("type", Json::str("request")),
            ("id", Json::Num(self.id as f64)),
            ("kernel", Json::Num(self.kernel as f64)),
            ("submit_tick", Json::Num(self.submit_tick as f64)),
            ("served_tick", Json::Num(self.served_tick as f64)),
            ("queue_ticks", Json::Num(self.queue_ticks as f64)),
            ("batch", Json::Num(self.batch as f64)),
            ("batch_mode", Json::str(self.batch_mode)),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("precision", Json::str(self.precision)),
            ("e2e_ns", Json::Num(self.e2e_ns as f64)),
            ("disposition", Json::str(self.disposition.tag())),
            (
                "classes",
                Json::Arr(
                    self.classes[..nh]
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
            (
                "margins",
                Json::Arr(
                    self.margins[..nh]
                        .iter()
                        .map(|&m| Json::Num(m as f64))
                        .collect(),
                ),
            ),
            ("confidence", Json::Num(self.confidence as f64)),
        ])
    }
}

/// Fixed-capacity ring buffer of [`FlightRecord`]s. All storage is
/// allocated in [`FlightRecorder::new`]; [`FlightRecorder::push`] is an
/// index bump and a struct store.
pub struct FlightRecorder {
    buf: Vec<FlightRecord>,
    /// Next slot to write.
    head: usize,
    /// Live records (≤ capacity).
    len: usize,
    /// Records ever pushed (monotonic; `total - len` were overwritten).
    total: u64,
}

impl FlightRecorder {
    /// Pre-allocate a ring holding the last `capacity` requests.
    /// `capacity` of 0 disables recording (pushes are dropped but still
    /// counted).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            buf: vec![FlightRecord::default(); capacity],
            head: 0,
            len: 0,
            total: 0,
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Live records (saturates at capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records ever pushed, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Append a record, overwriting the oldest once full. Never
    /// allocates.
    pub fn push(&mut self, rec: FlightRecord) {
        self.total += 1;
        if self.buf.is_empty() {
            return;
        }
        self.buf[self.head] = rec;
        self.head = (self.head + 1) % self.buf.len();
        if self.len < self.buf.len() {
            self.len += 1;
        }
    }

    /// Iterate the live records in chronological order (oldest surviving
    /// record first).
    pub fn iter(&self) -> impl Iterator<Item = &FlightRecord> {
        let cap = self.buf.len().max(1);
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| &self.buf[(start + i) % cap])
    }

    /// Write the live records as JSONL, oldest first.
    pub fn dump(&self, w: &mut impl Write) -> io::Result<()> {
        for rec in self.iter() {
            writeln!(w, "{}", rec.to_json())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> FlightRecord {
        FlightRecord {
            id,
            kernel: id as u32 % 7,
            submit_tick: id,
            served_tick: id + 2,
            queue_ticks: 2,
            batch: 4,
            cache_hit: id.is_multiple_of(2),
            num_heads: 2,
            classes: [1, 3, 0, 0, 0, 0, 0, 0],
            margins: [0.5, 1.25, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            confidence: 0.75,
            ..FlightRecord::default()
        }
    }

    #[test]
    fn ring_keeps_the_last_capacity_records_in_order() {
        let mut fr = FlightRecorder::new(4);
        for id in 0..10 {
            fr.push(rec(id));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.total(), 10);
        let ids: Vec<u64> = fr.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "oldest surviving first");
    }

    #[test]
    fn partial_fill_iterates_everything() {
        let mut fr = FlightRecorder::new(8);
        for id in 0..3 {
            fr.push(rec(id));
        }
        let ids: Vec<u64> = fr.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn zero_capacity_counts_but_stores_nothing() {
        let mut fr = FlightRecorder::new(0);
        for id in 0..5 {
            fr.push(rec(id));
        }
        assert_eq!(fr.len(), 0);
        assert_eq!(fr.total(), 5);
        assert_eq!(fr.iter().count(), 0);
    }

    #[test]
    fn dump_lines_parse_and_truncate_heads() {
        let mut fr = FlightRecorder::new(2);
        fr.push(rec(41));
        fr.push(rec(42));
        let mut out = Vec::new();
        fr.dump(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = mga_obs::json::parse(lines[1]).expect("valid json");
        assert_eq!(v.get("type").and_then(Json::as_str), Some("request"));
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(42.0));
        assert_eq!(v.get("precision").and_then(Json::as_str), Some("f32"));
        assert_eq!(v.get("batch_mode").and_then(Json::as_str), Some("full"));
        let classes = v.get("classes").and_then(Json::as_arr).unwrap();
        assert_eq!(classes.len(), 2, "only populated heads are emitted");
        assert_eq!(classes[1].as_f64(), Some(3.0));
        let margins = v.get("margins").and_then(Json::as_arr).unwrap();
        assert_eq!(margins[1].as_f64(), Some(1.25));
    }
}
