//! Typed serving errors.
//!
//! Every rejection on the request path is a [`ServeError`] the caller
//! can match on — a shed request gets a reasoned refusal at the door,
//! never a panic and never a hang. Swap failures are a separate
//! [`SwapError`]: they reject a *candidate plan*, not a request, and the
//! shard keeps serving its current plan untouched (instant rollback is
//! the absence of any state change).

use mga_core::persist::PersistError;

/// A request-path rejection. Admission control returns these at submit
/// time (`Cluster::submit` / `Engine::try_submit`); the synchronous fast
/// path returns them from `Engine::serve_one`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The shard's bounded intake queue is full and no healthy shard
    /// had room to redirect to.
    QueueFull {
        shard: usize,
        depth: usize,
        capacity: usize,
    },
    /// The request names a kernel outside the engine's catalog, so no
    /// graph/vector exists to compute its static embedding from.
    UnknownKernel { kernel: usize, catalog: usize },
    /// The request asked for a task head the plan does not have (or the
    /// caller's output buffer disagrees with the plan's head count).
    UnknownTaskHead { head: usize, num_heads: usize },
    /// Under the current queue-depth estimate the request cannot be
    /// served by its deadline tick; shed at the door instead of queueing
    /// work that will miss.
    DeadlineExceeded {
        deadline_tick: u64,
        estimated_tick: u64,
    },
    /// The hash-owning shard is down and no healthy shard could take
    /// the request.
    ShardDown { shard: usize },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull {
                shard,
                depth,
                capacity,
            } => write!(
                f,
                "shard {shard} queue full ({depth}/{capacity}) and no redirect target"
            ),
            ServeError::UnknownKernel { kernel, catalog } => {
                write!(f, "unknown kernel {kernel} (catalog has {catalog})")
            }
            ServeError::UnknownTaskHead { head, num_heads } => {
                write!(f, "unknown task head {head} (plan has {num_heads})")
            }
            ServeError::DeadlineExceeded {
                deadline_tick,
                estimated_tick,
            } => write!(
                f,
                "deadline tick {deadline_tick} unmeetable (estimated completion tick {estimated_tick})"
            ),
            ServeError::ShardDown { shard } => {
                write!(f, "shard {shard} is down and no healthy shard can take over")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A rejected hot-swap candidate. None of these change serving state:
/// the shard's current plan keeps answering requests.
#[derive(Debug)]
pub enum SwapError {
    /// The candidate checkpoint failed to load (corrupt bytes, bad
    /// checksum, I/O) — the typed rejection the `swap:corrupt` fault
    /// site proves.
    Load(PersistError),
    /// The candidate's architecture disagrees with the serving plan
    /// (different input width, hidden width or head layout), so its
    /// weights cannot serve this shard's traffic.
    Shape {
        field: &'static str,
        expected: usize,
        got: usize,
    },
    /// The candidate plan failed the pre-install health probe
    /// (non-finite logits on the probe input).
    Probe { detail: String },
    /// The shard index does not exist in this cluster.
    NoSuchShard { shard: usize, shards: usize },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Load(e) => write!(f, "candidate checkpoint rejected: {e}"),
            SwapError::Shape {
                field,
                expected,
                got,
            } => write!(
                f,
                "candidate shape mismatch: {field} is {got}, serving plan has {expected}"
            ),
            SwapError::Probe { detail } => write!(f, "candidate failed health probe: {detail}"),
            SwapError::NoSuchShard { shard, shards } => {
                write!(f, "no shard {shard} (cluster has {shards})")
            }
        }
    }
}

impl std::error::Error for SwapError {}

impl From<PersistError> for SwapError {
    fn from(e: PersistError) -> SwapError {
        SwapError::Load(e)
    }
}
