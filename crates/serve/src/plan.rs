//! Frozen inference plans: compile-once classifier snapshots.

use mga_core::model::FusionModel;
use mga_nn::infer;
use mga_nn::scaler::MinMaxScaler;
use mga_nn::{FusedAct, Tensor};

/// A compiled, grad-free snapshot of a trained [`FusionModel`]'s
/// classifier. Owns packed copies of the trunk and head weights (the
/// model itself can be dropped or keep training a successor), plus the
/// dynamic-feature scaler. The per-kernel static embedding prefix is
/// *not* here — it lives in the [`crate::EmbeddingCache`], keyed by
/// kernel.
///
/// The forward pass re-enters the exact kernels the training tape's
/// `FusedLinear` op calls ([`infer::fused_linear_into`]), so plan
/// outputs are bitwise-identical to `FusionModel::predict` on the same
/// inputs.
pub struct InferencePlan {
    trunk_w: Tensor,
    trunk_b: Tensor,
    heads: Vec<(Tensor, Tensor)>,
    head_sizes: Vec<usize>,
    aux_scaler: Option<MinMaxScaler>,
    in_dim: usize,
    aux_dim: usize,
    hidden: usize,
}

impl InferencePlan {
    /// Snapshot `model`'s classifier weights into a frozen plan.
    pub fn compile(model: &FusionModel) -> InferencePlan {
        mga_obs::span!("serve.compile");
        let e = model.export();
        InferencePlan {
            trunk_w: e.trunk_w.clone(),
            trunk_b: e.trunk_b.clone(),
            heads: e
                .heads
                .iter()
                .map(|(w, b)| ((*w).clone(), (*b).clone()))
                .collect(),
            head_sizes: e.head_sizes.to_vec(),
            aux_scaler: e.aux_scaler.cloned(),
            in_dim: e.in_dim,
            aux_dim: e.aux_dim,
            hidden: e.hidden,
        }
    }

    /// Total trunk input width (static prefix + scaled aux).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Width of the scaled dynamic-feature suffix (0 when static-only).
    pub fn aux_dim(&self) -> usize {
        self.aux_dim
    }

    /// Width of the per-kernel static embedding prefix.
    pub fn static_dim(&self) -> usize {
        self.in_dim - self.aux_dim
    }

    /// Trunk hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Class counts per head.
    pub fn head_sizes(&self) -> &[usize] {
        &self.head_sizes
    }

    /// Number of classification heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Widest head — sizes the shared logits scratch buffer.
    pub fn max_classes(&self) -> usize {
        self.head_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Scale one raw dynamic-feature row into `dst` (length
    /// [`InferencePlan::aux_dim`]), replicating `FusionModel::prepare`'s
    /// imputation rule bit for bit: a missing-width or non-finite row is
    /// imputed to the scaled mid-range (0.5) so the static modalities
    /// decide.
    pub fn scale_aux_into(&self, dst: &mut [f32], raw: &[f32]) {
        let scaler = match &self.aux_scaler {
            Some(s) => s,
            None => return,
        };
        debug_assert_eq!(dst.len(), self.aux_dim);
        if raw.len() != self.aux_dim || raw.iter().any(|x| !x.is_finite()) {
            mga_obs::metrics::counter("serve.degraded_aux").inc();
            dst.fill(0.5);
        } else {
            dst.copy_from_slice(raw);
            scaler.transform_row(dst);
        }
    }

    /// Run `rows` trunk-input rows (`x`, row-major `rows × in_dim`)
    /// through the trunk and every head, writing the argmax class of
    /// head `h` for row `r` into `classes[r * num_heads + h]`.
    ///
    /// `hidden` must hold `rows × hidden()` and `logits`
    /// `rows × max_classes()`; both are plain scratch the caller
    /// recycles. Nothing here allocates.
    pub fn forward_into(
        &self,
        x: &[f32],
        rows: usize,
        hidden: &mut [f32],
        logits: &mut [f32],
        classes: &mut [usize],
    ) {
        debug_assert!(x.len() >= rows * self.in_dim);
        debug_assert!(hidden.len() >= rows * self.hidden);
        debug_assert!(logits.len() >= rows * self.max_classes());
        debug_assert!(classes.len() >= rows * self.heads.len());
        let h = &mut hidden[..rows * self.hidden];
        infer::fused_linear_into(
            h,
            &x[..rows * self.in_dim],
            rows,
            &self.trunk_w,
            &self.trunk_b,
            FusedAct::Relu,
        );
        let nh = self.heads.len();
        for (hi, (w, b)) in self.heads.iter().enumerate() {
            let nc = self.head_sizes[hi];
            let lg = &mut logits[..rows * nc];
            infer::fused_linear_into(lg, h, rows, w, b, FusedAct::Identity);
            for r in 0..rows {
                classes[r * nh + hi] = infer::argmax(&lg[r * nc..(r + 1) * nc]);
            }
        }
    }
}
