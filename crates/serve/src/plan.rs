//! Frozen inference plans: compile-once classifier snapshots.

use mga_core::model::FusionModel;
use mga_nn::infer;
use mga_nn::quant::{self, Bf16Weights, Int8Weights};
use mga_nn::scaler::MinMaxScaler;
use mga_nn::simd;
use mga_nn::{FusedAct, Tensor};

/// Weight precision of a compiled [`InferencePlan`].
///
/// `F32` is the reference: bitwise-identical to the training forward
/// pass. The quantized variants trade weight memory for (bounded)
/// rounding error and are only eligible for serving behind the
/// exact-argmax parity gate `serve_bench` enforces against the f32 plan
/// on the CV test folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    #[default]
    F32,
    /// bfloat16 weights (f32 activations/accumulators).
    Bf16,
    /// int8 weights with per-output-feature f32 scales.
    Int8,
}

impl Precision {
    /// Lower-case tag used in metric names and bench record labels.
    pub fn tag(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
            Precision::Int8 => "int8",
        }
    }
}

/// One fused-linear stage (trunk or head) with its weights stored at the
/// plan's precision. The f32 variant carries the matmul panel kernel
/// resolved at compile time — the per-request path is a cached function
/// pointer, never a dispatch decision.
enum StageWeights {
    F32 { w: Tensor, panel: simd::PanelFn },
    Bf16(Bf16Weights),
    Int8(Int8Weights),
}

struct Stage {
    w: StageWeights,
    b: Tensor,
}

impl Stage {
    fn compile(w: &Tensor, b: &Tensor, precision: Precision) -> Stage {
        let w = match precision {
            Precision::F32 => {
                let (k, n) = w.shape();
                StageWeights::F32 {
                    w: w.clone(),
                    panel: simd::select_matmul(1, k, n),
                }
            }
            Precision::Bf16 => StageWeights::Bf16(Bf16Weights::quantize(w)),
            Precision::Int8 => StageWeights::Int8(Int8Weights::quantize(w)),
        };
        Stage { w, b: b.clone() }
    }

    fn forward(&self, out: &mut [f32], x: &[f32], rows: usize, act: FusedAct) {
        match &self.w {
            StageWeights::F32 { w, panel } => {
                infer::fused_linear_with(*panel, out, x, rows, w, &self.b, act)
            }
            StageWeights::Bf16(w) => quant::fused_linear_bf16_into(out, x, rows, w, &self.b, act),
            StageWeights::Int8(w) => quant::fused_linear_int8_into(out, x, rows, w, &self.b, act),
        }
    }
}

/// A compiled, grad-free snapshot of a trained [`FusionModel`]'s
/// classifier. Owns packed copies of the trunk and head weights (the
/// model itself can be dropped or keep training a successor), plus the
/// dynamic-feature scaler. The per-kernel static embedding prefix is
/// *not* here — it lives in the [`crate::EmbeddingCache`], keyed by
/// kernel.
///
/// At [`Precision::F32`] the forward pass re-enters the exact kernels
/// the training tape's `FusedLinear` op calls (via
/// [`infer::fused_linear_with`] with the panel resolved at compile
/// time), so plan outputs are bitwise-identical to
/// `FusionModel::predict` on the same inputs. Quantized plans decode
/// their weights inside the same loop structure and are approximate by
/// construction — ship them only behind the argmax parity gate.
pub struct InferencePlan {
    trunk: Stage,
    heads: Vec<Stage>,
    head_sizes: Vec<usize>,
    aux_scaler: Option<MinMaxScaler>,
    in_dim: usize,
    aux_dim: usize,
    hidden: usize,
    precision: Precision,
}

impl InferencePlan {
    /// Snapshot `model`'s classifier weights into a frozen f32 plan.
    pub fn compile(model: &FusionModel) -> InferencePlan {
        InferencePlan::compile_with(model, Precision::F32)
    }

    /// Snapshot `model`'s classifier at the given weight precision.
    /// Quantized variants calibrate their scales here (the
    /// "calibration" cost `serve_bench` records).
    pub fn compile_with(model: &FusionModel, precision: Precision) -> InferencePlan {
        mga_obs::span!("serve.compile");
        let e = model.export();
        InferencePlan {
            trunk: Stage::compile(e.trunk_w, e.trunk_b, precision),
            heads: e
                .heads
                .iter()
                .map(|(w, b)| Stage::compile(w, b, precision))
                .collect(),
            head_sizes: e.head_sizes.to_vec(),
            aux_scaler: e.aux_scaler.cloned(),
            in_dim: e.in_dim,
            aux_dim: e.aux_dim,
            hidden: e.hidden,
            precision,
        }
    }

    /// The weight precision this plan was compiled at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes of packed weight storage (excludes biases — those stay f32
    /// at every precision).
    pub fn weight_bytes(&self) -> usize {
        let stage = |s: &Stage| match &s.w {
            StageWeights::F32 { w, .. } => std::mem::size_of_val(w.data()),
            StageWeights::Bf16(w) => w.weight_bytes(),
            StageWeights::Int8(w) => w.weight_bytes(),
        };
        stage(&self.trunk) + self.heads.iter().map(stage).sum::<usize>()
    }

    /// Total trunk input width (static prefix + scaled aux).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Width of the scaled dynamic-feature suffix (0 when static-only).
    pub fn aux_dim(&self) -> usize {
        self.aux_dim
    }

    /// Width of the per-kernel static embedding prefix.
    pub fn static_dim(&self) -> usize {
        self.in_dim - self.aux_dim
    }

    /// Trunk hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Class counts per head.
    pub fn head_sizes(&self) -> &[usize] {
        &self.head_sizes
    }

    /// Number of classification heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Widest head — sizes the shared logits scratch buffer.
    pub fn max_classes(&self) -> usize {
        self.head_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Scale one raw dynamic-feature row into `dst` (length
    /// [`InferencePlan::aux_dim`]), replicating `FusionModel::prepare`'s
    /// imputation rule bit for bit: a missing-width or non-finite row is
    /// imputed to the scaled mid-range (0.5) so the static modalities
    /// decide.
    pub fn scale_aux_into(&self, dst: &mut [f32], raw: &[f32]) {
        let scaler = match &self.aux_scaler {
            Some(s) => s,
            None => return,
        };
        debug_assert_eq!(dst.len(), self.aux_dim);
        if raw.len() != self.aux_dim || raw.iter().any(|x| !x.is_finite()) {
            mga_obs::metrics::counter("serve.degraded_aux").inc();
            dst.fill(0.5);
        } else {
            dst.copy_from_slice(raw);
            scaler.transform_row(dst);
        }
    }

    /// Run `rows` trunk-input rows (`x`, row-major `rows × in_dim`)
    /// through the trunk and every head, writing the argmax class of
    /// head `h` for row `r` into `classes[r * num_heads + h]`.
    ///
    /// `hidden` must hold `rows × hidden()` and `logits`
    /// `rows × max_classes()`; both are plain scratch the caller
    /// recycles. Nothing here allocates.
    pub fn forward_into(
        &self,
        x: &[f32],
        rows: usize,
        hidden: &mut [f32],
        logits: &mut [f32],
        classes: &mut [usize],
    ) {
        self.trunk_into(x, rows, hidden);
        self.heads_into(hidden, rows, logits, classes, None);
    }

    /// The trunk half of [`InferencePlan::forward_into`]: run `rows`
    /// input rows through the fused trunk layer into `hidden`. Split out
    /// so the serving engine can time the trunk and head stages
    /// separately; composing [`InferencePlan::trunk_into`] +
    /// [`InferencePlan::heads_into`] is bitwise-identical to the single
    /// call.
    pub fn trunk_into(&self, x: &[f32], rows: usize, hidden: &mut [f32]) {
        debug_assert!(x.len() >= rows * self.in_dim);
        debug_assert!(hidden.len() >= rows * self.hidden);
        let h = &mut hidden[..rows * self.hidden];
        self.trunk
            .forward(h, &x[..rows * self.in_dim], rows, FusedAct::Relu);
    }

    /// The head half of [`InferencePlan::forward_into`]: run the trunk's
    /// `hidden` activations through every head, writing the argmax class
    /// of head `h` for row `r` into `classes[r * num_heads + h]`. When
    /// `margins` is provided (same `rows × num_heads` layout) the top-1 −
    /// top-2 decision margin of each head is recorded alongside — the
    /// class decision itself comes from the same comparator either way
    /// ([`infer::argmax_margin`] is tie-for-tie identical to
    /// [`infer::argmax`]), so telemetry never changes a prediction.
    pub fn heads_into(
        &self,
        hidden: &[f32],
        rows: usize,
        logits: &mut [f32],
        classes: &mut [usize],
        mut margins: Option<&mut [f32]>,
    ) {
        debug_assert!(hidden.len() >= rows * self.hidden);
        debug_assert!(logits.len() >= rows * self.max_classes());
        debug_assert!(classes.len() >= rows * self.heads.len());
        let h = &hidden[..rows * self.hidden];
        let nh = self.heads.len();
        for (hi, stage) in self.heads.iter().enumerate() {
            let nc = self.head_sizes[hi];
            let lg = &mut logits[..rows * nc];
            stage.forward(lg, h, rows, FusedAct::Identity);
            for r in 0..rows {
                let row = &lg[r * nc..(r + 1) * nc];
                match margins.as_deref_mut() {
                    Some(m) => {
                        let (cls, mg) = infer::argmax_margin(row);
                        classes[r * nh + hi] = cls;
                        m[r * nh + hi] = mg;
                    }
                    None => classes[r * nh + hi] = infer::argmax(row),
                }
            }
        }
    }
}
