//! `mga-serve` — the high-throughput inference engine.
//!
//! Training amortizes its feature pipeline across epochs; serving must
//! amortize it across *requests*. The paper's deployment story (§5–6:
//! tune once per kernel, reuse the model across applications and inputs)
//! makes the split obvious: everything derived from the *program* —
//! graph readout, DAE code, scaled raw vector, graph summary — is fixed
//! the moment training ends, while only the *dynamic* (auxiliary)
//! features change per request. This crate freezes the former and
//! streams the latter:
//!
//! * [`plan::InferencePlan`] — a compile-once snapshot of the trained
//!   classifier: packed grad-free trunk/head weights plus the dynamic
//!   feature scaler. A request reduces to one scaler pass and a
//!   two-layer MLP — no tape, no graph batching, no gradient slots.
//! * [`cache::EmbeddingCache`] — per-kernel fused static embeddings
//!   (GNN readout ⊕ DAE code ⊕ scaled vector ⊕ summary), keyed by
//!   kernel id with a deterministic logical-clock LRU. Warmable from a
//!   training [`mga_core::model::PreparedBatch`]; kernels unseen at
//!   compile time take a slow path that computes and inserts their
//!   embedding on first use (the paper's Fig. 6 unseen-kernel scenario).
//! * [`engine::Engine`] — a batched serving loop: requests queue, a
//!   logical-tick policy forms micro-batches (no wall-clock reads on
//!   the decision path, so batching is deterministic and testable), and
//!   the scratch memory cycles through an `mga-nn` arena so the steady
//!   state allocates nothing.
//!
//! Every f32 prediction is **bitwise identical** to
//! [`mga_core::model::FusionModel::predict`]: the plan re-enters the
//! same matmul / bias-activation kernels the tape uses (with the panel
//! kernel resolved once at compile time), static embedding rows are
//! row-stable under batching, and class decisions share the training
//! argmax comparator. The property tests in `tests/serve_parity.rs`
//! enforce this across request orderings, batch sizes, thread counts
//! and cache states. Plans can also be compiled at
//! [`plan::Precision::Bf16`] / [`plan::Precision::Int8`]; those are
//! approximate and only eligible for serving behind an exact-argmax
//! parity gate against the f32 plan (enforced by `serve_bench` on the
//! CV test folds and by `tests/quantized_parity.rs`).

//!
//! Serving is also the layer that must explain itself in production, so
//! the engine carries an always-on, allocation-free observability layer
//! (see `DESIGN.md` § Serving observability):
//!
//! * [`flight::FlightRecorder`] — a fixed-capacity ring of per-request
//!   [`flight::FlightRecord`]s (kernel, ticks, batch size, cache
//!   hit/miss, precision, per-head class + decision margin), dumped as
//!   JSONL on demand or to `MGA_FLIGHT=<path>` at end of run;
//! * per-stage latency histograms (`serve.lat.*`, log₂ ns buckets via
//!   `mga_obs::hist`) measured inside the engine;
//! * tick-driven drift monitors (`mga_obs::drift`) over the new-kernel
//!   rate, cache-miss rate and mean head confidence.
//!
//! All of it is observation-only: served bytes are bitwise identical
//! with telemetry on or off (`tests/serve_observability.rs`).

//!
//! Production traffic runs through the sharded cluster layer (see
//! `DESIGN.md` § Serving cluster & admission control):
//!
//! * [`router::Router`] — a consistent-hash ring (virtual nodes) keying
//!   kernels to shards, stable under shard add/remove and deterministic
//!   under failover;
//! * [`admission`] — explicit [`admission::Decision`]s at the door:
//!   admit, redirect, or shed with a typed reason (queue full, deadline
//!   unmeetable under the queue-depth estimate, shard down);
//! * [`cluster::Cluster`] — N engine shards with bounded intake queues,
//!   per-shard [`cluster::Health`], crash/stall fault handling with
//!   queue evacuation (zero accepted requests lost), and zero-drop hot
//!   plan swaps with validation-gated rollback ([`cluster::Cluster::swap`],
//!   [`cluster::load_candidate`]);
//! * [`error::ServeError`] / [`error::SwapError`] — every request-path
//!   refusal and every rejected swap candidate is a typed error, never a
//!   panic.
//!
//! The chaos suite (`tests/cluster_chaos.rs`) injects `shard:crash`,
//! `shard:stall`, `route:misdirect` and `swap:corrupt` faults through
//! `MGA_FAULT` and replays whole failure scenarios to bitwise-identical
//! response checksums.

pub mod admission;
pub mod cache;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod flight;
pub mod plan;
pub mod router;
mod worker;

pub use admission::{Decision, ShardView, ShedReason};
pub use cache::EmbeddingCache;
pub use cluster::{load_candidate, Cluster, ClusterConfig, DataPlane, Health};
pub use engine::{dispatch_due, BatchMode, Engine, Request, Response, ServeConfig};
pub use error::{ServeError, SwapError};
pub use flight::{Disposition, FlightRecord, FlightRecorder};
pub use plan::{InferencePlan, Precision};
pub use router::Router;
