//! `mga-gnn` — gated and heterogeneous graph neural networks over
//! PROGRAML-style multi-graphs.
//!
//! The paper's graph modality is modeled by a **heterogeneous GNN**: "an
//! agglomeration of three different GNNs to model each flow graph (data
//! flow, control flow, and call flow). Each of these three sub-networks
//! are homogeneous … a Gated Graph Convolutional Network with a 'mean'
//! aggregation scheme" (§3.2). This crate implements:
//!
//! * [`NodeEmbedding`] — a learned lookup table from
//!   [`mga_graph::Node::vocab_index`] to the initial node feature vector;
//! * [`MessageLayer`] — one message-passing layer per relation
//!   (`W_r · h_src`, mean-aggregated over incoming edges), with a choice
//!   of update function: GRU (GGNN, the paper's pick), plain GCN-style
//!   linear+tanh, or GraphSAGE-style concat+linear (for the ablation
//!   benches);
//! * [`HeteroGnn`] — per-relation sub-networks whose aggregated messages
//!   are averaged across relations and fed to a single shared update,
//!   stacked for a configurable number of layers (paper: 2);
//! * [`GraphBatch`] — block-diagonal batching of several graphs with a
//!   segment-mean readout over instruction nodes per graph.

use mga_graph::{Node, ProGraph, Relation};
use mga_nn::layers::GruCell;
use mga_nn::tape::{FusedAct, Tape, Var};
use mga_nn::tensor::Tensor;
use mga_nn::{init, ParamId, ParamSet};
use rand::rngs::StdRng;

/// Span names for per-relation message passing, indexed by
/// [`Relation::index`] (span names must be `&'static str`).
const REL_SPAN: [&str; 3] = ["gnn.msg.control", "gnn.msg.data", "gnn.msg.call"];

/// Update function used after message aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Gated update (GGNN, Li et al. 2015) — the paper's configuration.
    Gru,
    /// `tanh(W [h ‖ m] + b)`-style GraphSAGE update.
    SageConcat,
    /// `tanh(m + h W_self)` GCN-ish update.
    Gcn,
    /// GAT-style attention: per-edge gates `σ(m_e · a_r)` weight the
    /// aggregation (normalized per destination), GCN-style update.
    Gat,
}

/// A learned embedding table for node vocabulary indices.
pub struct NodeEmbedding {
    table: ParamId,
    pub dim: usize,
}

impl NodeEmbedding {
    pub fn new(ps: &mut ParamSet, name: &str, dim: usize, rng: &mut StdRng) -> NodeEmbedding {
        let table = ps.add(
            format!("{name}.embed"),
            init::uniform(Node::VOCAB_SIZE, dim, 0.5, rng),
        );
        NodeEmbedding { table, dim }
    }

    /// Initial node features `[num_nodes × dim]` for a batch of vocab ids.
    pub fn forward(&self, tape: &mut Tape, ps: &ParamSet, vocab_ids: &[u32]) -> Var {
        let t = tape.param(ps, self.table);
        tape.gather_rows(t, vocab_ids)
    }
}

/// One relation's message transform: `m_v = mean_{u→v} (W_r h_u + b_r)`,
/// or attention-weighted when the layer uses [`UpdateKind::Gat`].
struct RelationMessage {
    w: ParamId,
    b: ParamId,
    /// Attention vector `a_r` (GAT layers only).
    att: Option<ParamId>,
}

impl RelationMessage {
    fn new(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        attention: bool,
        rng: &mut StdRng,
    ) -> RelationMessage {
        RelationMessage {
            w: ps.add(format!("{name}.w"), init::xavier_uniform(dim, dim, rng)),
            b: ps.add(format!("{name}.b"), Tensor::zeros(1, dim)),
            att: attention
                .then(|| ps.add(format!("{name}.att"), init::xavier_uniform(dim, 1, rng))),
        }
    }

    /// Aggregate messages for one relation given its edge endpoints.
    fn forward(
        &self,
        tape: &mut Tape,
        ps: &ParamSet,
        h: Var,
        srcs: &[u32],
        dsts: &[u32],
        num_nodes: usize,
    ) -> Var {
        if srcs.is_empty() {
            let dim = tape.value(h).cols();
            return tape.leaf_zeros(num_nodes, dim);
        }
        let hs = tape.gather_rows(h, srcs);
        let w = tape.param(ps, self.w);
        let b = tape.param(ps, self.b);
        let msg = tape.linear(hs, w, b, FusedAct::Identity);
        match self.att {
            None => tape.scatter_mean_rows(msg, dsts, num_nodes),
            Some(att) => {
                // Per-edge gate σ(m_e · a_r); normalized weighted sum per
                // destination (a sigmoid-gated softening of GAT's softmax
                // that our scatter primitives express exactly).
                let a = tape.param(ps, att);
                let scores = tape.matmul(msg, a);
                let gates = tape.sigmoid(scores);
                let weighted = tape.mul_row_scale(msg, gates);
                let num = tape.scatter_sum_rows(weighted, dsts, num_nodes);
                let den = tape.scatter_sum_rows(gates, dsts, num_nodes);
                let den = tape.add_scalar(den, 1e-6);
                tape.div_row_scale(num, den)
            }
        }
    }
}

/// One heterogeneous message-passing layer: per-relation messages, mean
/// across relations, one shared update.
pub struct MessageLayer {
    relations: Vec<RelationMessage>,
    update: Update,
    homogeneous: bool,
    pub dim: usize,
}

enum Update {
    Gru(GruCell),
    SageConcat { w: ParamId, b: ParamId },
    Gcn { w_self: ParamId },
}

impl MessageLayer {
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        update: UpdateKind,
        rng: &mut StdRng,
    ) -> MessageLayer {
        Self::with_homogeneous(ps, name, dim, update, false, rng)
    }

    /// Like [`MessageLayer::new`], optionally homogeneous (single shared
    /// relation transform over the union of all edges).
    pub fn with_homogeneous(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        update: UpdateKind,
        homogeneous: bool,
        rng: &mut StdRng,
    ) -> MessageLayer {
        let attention = update == UpdateKind::Gat;
        let relations = if homogeneous {
            vec![RelationMessage::new(
                ps,
                &format!("{name}.union"),
                dim,
                attention,
                rng,
            )]
        } else {
            Relation::ALL
                .iter()
                .map(|r| RelationMessage::new(ps, &format!("{name}.{r:?}"), dim, attention, rng))
                .collect()
        };
        let update = match update {
            UpdateKind::Gru => Update::Gru(GruCell::new(ps, &format!("{name}.gru"), dim, dim, rng)),
            UpdateKind::SageConcat => Update::SageConcat {
                w: ps.add(
                    format!("{name}.sage.w"),
                    init::xavier_uniform(2 * dim, dim, rng),
                ),
                b: ps.add(format!("{name}.sage.b"), Tensor::zeros(1, dim)),
            },
            UpdateKind::Gcn | UpdateKind::Gat => Update::Gcn {
                w_self: ps.add(format!("{name}.gcn.w"), init::xavier_uniform(dim, dim, rng)),
            },
        };
        MessageLayer {
            relations,
            update,
            homogeneous,
            dim,
        }
    }

    /// One round of message passing over a batch's edges.
    pub fn forward(&self, tape: &mut Tape, ps: &ParamSet, h: Var, batch: &GraphBatch) -> Var {
        mga_obs::span!("gnn.layer");
        let n = batch.num_nodes;
        let msg = if self.homogeneous {
            // Union of all edges through the single shared transform: the
            // relation identity is erased.
            mga_obs::span!("gnn.msg.union");
            let mut src = Vec::new();
            let mut dst = Vec::new();
            for r in 0..3 {
                src.extend_from_slice(&batch.edge_src[r]);
                dst.extend_from_slice(&batch.edge_dst[r]);
            }
            self.relations[0].forward(tape, ps, h, &src, &dst, n)
        } else {
            // Mean of the per-relation aggregated messages.
            let mut acc: Option<Var> = None;
            for (r, rel) in self.relations.iter().enumerate() {
                let _rel_span = mga_obs::trace::span(REL_SPAN[r]);
                let m = rel.forward(tape, ps, h, &batch.edge_src[r], &batch.edge_dst[r], n);
                drop(_rel_span);
                acc = Some(match acc {
                    None => m,
                    Some(a) => tape.add(a, m),
                });
            }
            let acc = acc.expect("at least one relation");
            tape.scale(acc, 1.0 / self.relations.len() as f32)
        };
        match &self.update {
            Update::Gru(gru) => gru.forward(tape, ps, msg, h),
            Update::SageConcat { w, b } => {
                let cat = tape.concat_cols(&[h, msg]);
                let wv = tape.param(ps, *w);
                let bv = tape.param(ps, *b);
                tape.linear(cat, wv, bv, FusedAct::Tanh)
            }
            Update::Gcn { w_self } => {
                let wv = tape.param(ps, *w_self);
                let hw = tape.matmul(h, wv);
                let s = tape.add(hw, msg);
                tape.tanh(s)
            }
        }
    }
}

/// The full heterogeneous GNN: embedding, stacked message layers, and a
/// per-graph mean readout over instruction nodes.
pub struct HeteroGnn {
    pub embedding: NodeEmbedding,
    pub layers: Vec<MessageLayer>,
}

/// Configuration for [`HeteroGnn`].
#[derive(Debug, Clone)]
pub struct GnnConfig {
    pub dim: usize,
    /// Number of message-passing layers (paper: 2).
    pub layers: usize,
    pub update: UpdateKind,
    /// Ablation: collapse the three flow relations into one homogeneous
    /// edge set with a single shared message transform (§3.2 argues a
    /// homogeneous network cannot fully model the multi-graph).
    pub homogeneous: bool,
}

impl Default for GnnConfig {
    fn default() -> Self {
        GnnConfig {
            dim: 32,
            layers: 2,
            update: UpdateKind::Gru,
            homogeneous: false,
        }
    }
}

impl HeteroGnn {
    pub fn new(ps: &mut ParamSet, name: &str, cfg: &GnnConfig, rng: &mut StdRng) -> HeteroGnn {
        let embedding = NodeEmbedding::new(ps, name, cfg.dim, rng);
        let layers = (0..cfg.layers)
            .map(|i| {
                MessageLayer::with_homogeneous(
                    ps,
                    &format!("{name}.layer{i}"),
                    cfg.dim,
                    cfg.update,
                    cfg.homogeneous,
                    rng,
                )
            })
            .collect();
        HeteroGnn { embedding, layers }
    }

    /// Forward over a batch; returns per-graph embeddings
    /// `[num_graphs × dim]`.
    pub fn forward(&self, tape: &mut Tape, ps: &ParamSet, batch: &GraphBatch) -> Var {
        mga_obs::span!("gnn.forward");
        let mut h = self.embedding.forward(tape, ps, &batch.vocab_ids);
        for layer in &self.layers {
            h = layer.forward(tape, ps, h, batch);
        }
        // Readout: mean over instruction nodes, per graph.
        mga_obs::span!("gnn.readout");
        let hi = tape.gather_rows(h, &batch.instr_nodes);
        tape.scatter_mean_rows(hi, &batch.instr_graph, batch.num_graphs)
    }
}

/// Per-graph extent bookkeeping inside a [`GraphBatch`] — how many
/// nodes, edges (per relation) and instruction nodes one graph
/// contributed. Recorded at pack time so a batch can later be re-sliced
/// into sub-batches ([`GraphBatch::subset`]) without the source
/// [`ProGraph`]s, which prepared training batches no longer hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSpan {
    pub nodes: u32,
    pub edges: [u32; 3],
    pub instrs: u32,
}

/// Several graphs packed block-diagonally for one forward pass.
pub struct GraphBatch {
    pub num_nodes: usize,
    pub num_graphs: usize,
    /// Vocabulary index of each node.
    pub vocab_ids: Vec<u32>,
    /// Per relation: edge sources/destinations (node-indexed).
    pub edge_src: [Vec<u32>; 3],
    pub edge_dst: [Vec<u32>; 3],
    /// Instruction-node indices (for readout)...
    pub instr_nodes: Vec<u32>,
    /// ...and which graph each instruction node belongs to.
    pub instr_graph: Vec<u32>,
    /// Extent of each packed graph, in pack order.
    pub spans: Vec<GraphSpan>,
}

impl GraphBatch {
    /// Pack a set of graphs into one batch.
    pub fn new(graphs: &[&ProGraph]) -> GraphBatch {
        mga_obs::span!("graph.batch");
        assert!(!graphs.is_empty(), "empty graph batch");
        let mut batch = GraphBatch {
            num_nodes: 0,
            num_graphs: graphs.len(),
            vocab_ids: Vec::new(),
            edge_src: [Vec::new(), Vec::new(), Vec::new()],
            edge_dst: [Vec::new(), Vec::new(), Vec::new()],
            instr_nodes: Vec::new(),
            instr_graph: Vec::new(),
            spans: Vec::with_capacity(graphs.len()),
        };
        for (gi, g) in graphs.iter().enumerate() {
            let base = batch.num_nodes as u32;
            for n in &g.nodes {
                batch.vocab_ids.push(n.vocab_index() as u32);
            }
            let mut edges = [0u32; 3];
            for r in Relation::ALL {
                // The graph's cached endpoint lists (shared with CSR
                // construction) — only the base offset is batch-specific.
                let (srcs, dsts) = g.edge_endpoints(r);
                batch.edge_src[r.index()].extend(srcs.iter().map(|&s| base + s));
                batch.edge_dst[r.index()].extend(dsts.iter().map(|&d| base + d));
                edges[r.index()] = srcs.len() as u32;
            }
            for &i in g.instruction_node_ids() {
                batch.instr_nodes.push(base + i);
                batch.instr_graph.push(gi as u32);
            }
            batch.spans.push(GraphSpan {
                nodes: g.num_nodes() as u32,
                edges,
                instrs: g.instruction_node_ids().len() as u32,
            });
            batch.num_nodes += g.num_nodes();
        }
        batch
    }

    /// Batch of one.
    pub fn single(g: &ProGraph) -> GraphBatch {
        GraphBatch::new(&[g])
    }

    /// Re-pack a subset of this batch's graphs (by ascending pack index)
    /// into a new block-diagonal batch, rebasing node indices.
    ///
    /// Row-stable by the same argument as batching itself: graph
    /// `keep[j]` occupies block `j` of the sub-batch with exactly the
    /// nodes, edges and instruction readout it had in the full batch, so
    /// a forward over the subset produces bitwise the rows the full
    /// batch produced for those graphs. The data-parallel trainer uses
    /// this to hand each micro-batch only the graphs its samples touch.
    pub fn subset(&self, keep: &[usize]) -> GraphBatch {
        assert!(!keep.is_empty(), "empty graph subset");
        // Prefix offsets of every graph's block in the packed arrays.
        let mut node_off = Vec::with_capacity(self.num_graphs);
        let mut edge_off = [
            Vec::with_capacity(self.num_graphs),
            Vec::with_capacity(self.num_graphs),
            Vec::with_capacity(self.num_graphs),
        ];
        let mut instr_off = Vec::with_capacity(self.num_graphs);
        let (mut n, mut e, mut i) = (0u32, [0u32; 3], 0u32);
        for span in &self.spans {
            node_off.push(n);
            instr_off.push(i);
            n += span.nodes;
            i += span.instrs;
            for r in 0..3 {
                edge_off[r].push(e[r]);
                e[r] += span.edges[r];
            }
        }
        let mut sub = GraphBatch {
            num_nodes: 0,
            num_graphs: keep.len(),
            vocab_ids: Vec::new(),
            edge_src: [Vec::new(), Vec::new(), Vec::new()],
            edge_dst: [Vec::new(), Vec::new(), Vec::new()],
            instr_nodes: Vec::new(),
            instr_graph: Vec::new(),
            spans: Vec::with_capacity(keep.len()),
        };
        let mut prev = None;
        for (j, &gi) in keep.iter().enumerate() {
            assert!(prev.is_none_or(|p| p < gi), "subset must be ascending");
            prev = Some(gi);
            let span = self.spans[gi];
            let old_base = node_off[gi];
            let new_base = sub.num_nodes as u32;
            let nodes = old_base as usize..(old_base + span.nodes) as usize;
            sub.vocab_ids.extend_from_slice(&self.vocab_ids[nodes]);
            for (r, off) in edge_off.iter().enumerate() {
                let lo = off[gi] as usize;
                let hi = lo + span.edges[r] as usize;
                sub.edge_src[r].extend(
                    self.edge_src[r][lo..hi]
                        .iter()
                        .map(|&s| s - old_base + new_base),
                );
                sub.edge_dst[r].extend(
                    self.edge_dst[r][lo..hi]
                        .iter()
                        .map(|&d| d - old_base + new_base),
                );
            }
            let lo = instr_off[gi] as usize;
            let hi = lo + span.instrs as usize;
            sub.instr_nodes.extend(
                self.instr_nodes[lo..hi]
                    .iter()
                    .map(|&x| x - old_base + new_base),
            );
            sub.instr_graph.extend((lo..hi).map(|_| j as u32));
            sub.spans.push(span);
            sub.num_nodes += span.nodes as usize;
        }
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_graph::build_function_graph;
    use mga_ir::builder::FunctionBuilder;
    use mga_ir::instr::CmpPred;
    use mga_ir::{Module, Param, Type};
    use mga_nn::optim::AdamW;
    use rand::SeedableRng;

    fn kernel(with_float: bool, nloads: usize) -> ProGraph {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new(
            "k",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I64,
                },
                Param {
                    name: "a".into(),
                    ty: if with_float {
                        Type::F64.ptr()
                    } else {
                        Type::I64.ptr()
                    },
                },
            ],
            Type::Void,
        );
        let entry = b.current_block();
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let (i, ip) = b.phi_begin(Type::I64);
        let c = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        for _ in 0..nloads {
            let p = b.gep(b.param(1), i);
            let v = b.load(p);
            let v2 = if with_float {
                let two = b.const_f64(2.0);
                b.fmul(v, two)
            } else {
                let two = b.const_i64(2);
                b.mul(v, two)
            };
            b.store(v2, p);
        }
        let one = b.const_i64(1);
        let ix = b.add(i, one);
        b.br(header);
        b.phi_finish(ip, vec![(entry, zero), (body, ix)]);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish();
        m.add_function(f);
        build_function_graph(&m, &m.functions[0])
    }

    #[test]
    fn forward_produces_graph_embeddings() {
        let g1 = kernel(true, 1);
        let g2 = kernel(false, 3);
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let gnn = HeteroGnn::new(&mut ps, "g", &GnnConfig::default(), &mut rng);
        let batch = GraphBatch::new(&[&g1, &g2]);
        let mut tape = Tape::new();
        let out = gnn.forward(&mut tape, &ps, &batch);
        assert_eq!(tape.value(out).shape(), (2, 32));
        // Different graphs produce different embeddings.
        let a = tape.value(out).row_slice(0).to_vec();
        let b = tape.value(out).row_slice(1).to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn batched_forward_matches_individual_forward() {
        let g1 = kernel(true, 2);
        let g2 = kernel(false, 1);
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let gnn = HeteroGnn::new(&mut ps, "g", &GnnConfig::default(), &mut rng);

        let batch = GraphBatch::new(&[&g1, &g2]);
        let mut tape = Tape::new();
        let out = gnn.forward(&mut tape, &ps, &batch);
        let batched0 = tape.value(out).row_slice(0).to_vec();
        let batched1 = tape.value(out).row_slice(1).to_vec();

        let mut t1 = Tape::new();
        let o1 = gnn.forward(&mut t1, &ps, &GraphBatch::single(&g1));
        let solo0 = t1.value(o1).row_slice(0).to_vec();
        let mut t2 = Tape::new();
        let o2 = gnn.forward(&mut t2, &ps, &GraphBatch::single(&g2));
        let solo1 = t2.value(o2).row_slice(0).to_vec();

        for (a, b) in batched0.iter().zip(&solo0) {
            assert!((a - b).abs() < 1e-5, "batching changed graph 0: {a} vs {b}");
        }
        for (a, b) in batched1.iter().zip(&solo1) {
            assert!((a - b).abs() < 1e-5, "batching changed graph 1: {a} vs {b}");
        }
    }

    /// `subset` must reproduce the full batch's readout rows *bitwise*:
    /// the data-parallel trainer leans on this to split an epoch's graph
    /// work across micro-batches without changing any float.
    #[test]
    fn subset_forward_is_bitwise_row_stable() {
        let graphs: Vec<ProGraph> = (1..=4)
            .flat_map(|n| [kernel(true, n), kernel(false, n)])
            .collect();
        let refs: Vec<&ProGraph> = graphs.iter().collect();
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let gnn = HeteroGnn::new(&mut ps, "g", &GnnConfig::default(), &mut rng);

        let full = GraphBatch::new(&refs);
        let mut tape = Tape::new();
        let out = gnn.forward(&mut tape, &ps, &full);
        let full_rows: Vec<Vec<f32>> = (0..full.num_graphs)
            .map(|g| tape.value(out).row_slice(g).to_vec())
            .collect();

        for keep in [
            vec![0],
            vec![3, 7],
            vec![1, 2, 5],
            vec![0, 1, 2, 3, 4, 5, 6, 7],
        ] {
            let sub = full.subset(&keep);
            assert_eq!(sub.num_graphs, keep.len());
            let mut t = Tape::new();
            let o = gnn.forward(&mut t, &ps, &sub);
            for (j, &gi) in keep.iter().enumerate() {
                assert_eq!(
                    t.value(o).row_slice(j),
                    full_rows[gi].as_slice(),
                    "subset {keep:?} row {j} (graph {gi}) must be bitwise identical"
                );
            }
        }
    }

    /// Spans recorded at pack time describe exactly the packed extents.
    #[test]
    fn spans_account_for_every_packed_element() {
        let g1 = kernel(true, 2);
        let g2 = kernel(false, 3);
        let batch = GraphBatch::new(&[&g1, &g2]);
        assert_eq!(batch.spans.len(), 2);
        let nodes: u32 = batch.spans.iter().map(|s| s.nodes).sum();
        assert_eq!(nodes as usize, batch.num_nodes);
        for r in 0..3 {
            let edges: u32 = batch.spans.iter().map(|s| s.edges[r]).sum();
            assert_eq!(edges as usize, batch.edge_src[r].len());
        }
        let instrs: u32 = batch.spans.iter().map(|s| s.instrs).sum();
        assert_eq!(instrs as usize, batch.instr_nodes.len());
    }

    #[test]
    fn gnn_learns_to_separate_two_classes() {
        // Float kernels are class 1, int kernels class 0; the GNN must
        // learn this from node vocabularies/structure alone.
        let graphs: Vec<ProGraph> = (1..=4)
            .flat_map(|n| [kernel(true, n), kernel(false, n)])
            .collect();
        let labels: Vec<u32> = (0..graphs.len() as u32).map(|i| 1 - (i % 2)).collect();
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = GnnConfig {
            dim: 16,
            layers: 2,
            update: UpdateKind::Gru,
            homogeneous: false,
        };
        let gnn = HeteroGnn::new(&mut ps, "g", &cfg, &mut rng);
        let head_w = ps.add("head.w", init::xavier_uniform(16, 2, &mut rng));
        let head_b = ps.add("head.b", Tensor::zeros(1, 2));
        let mut opt = AdamW::new(0.02).with_weight_decay(0.0);
        let refs: Vec<&ProGraph> = graphs.iter().collect();
        let batch = GraphBatch::new(&refs);
        let mut last = f32::MAX;
        for _ in 0..60 {
            let mut tape = Tape::new();
            let emb = gnn.forward(&mut tape, &ps, &batch);
            let w = tape.param(&ps, head_w);
            let b = tape.param(&ps, head_b);
            let logits = tape.matmul(emb, w);
            let logits = tape.add_bias(logits, b);
            let loss = tape.softmax_cross_entropy(logits, &labels);
            last = tape.value(loss).get(0, 0);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut ps);
            opt.step(&mut ps);
        }
        assert!(last < 0.1, "GNN failed to fit simple classes: loss {last}");
    }

    #[test]
    fn all_update_kinds_run_and_differ() {
        let g = kernel(true, 2);
        let batch = GraphBatch::single(&g);
        let mut outs = Vec::new();
        for (i, kind) in [
            UpdateKind::Gru,
            UpdateKind::SageConcat,
            UpdateKind::Gcn,
            UpdateKind::Gat,
        ]
        .into_iter()
        .enumerate()
        {
            let mut ps = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            let cfg = GnnConfig {
                dim: 8,
                layers: 2,
                update: kind,
                homogeneous: false,
            };
            let gnn = HeteroGnn::new(&mut ps, "g", &cfg, &mut rng);
            let mut tape = Tape::new();
            let out = gnn.forward(&mut tape, &ps, &batch);
            assert_eq!(tape.value(out).shape(), (1, 8));
            outs.push(tape.value(out).row_slice(0).to_vec());
        }
        assert_ne!(outs[0], outs[1]);
        assert_ne!(outs[1], outs[2]);
        assert_ne!(outs[2], outs[3], "GAT must differ from plain GCN");
    }

    #[test]
    fn gat_attention_params_receive_gradient() {
        let g = kernel(true, 2);
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = GnnConfig {
            dim: 8,
            layers: 1,
            update: UpdateKind::Gat,
            homogeneous: false,
        };
        let gnn = HeteroGnn::new(&mut ps, "g", &cfg, &mut rng);
        let batch = GraphBatch::single(&g);
        let mut tape = Tape::new();
        let out = gnn.forward(&mut tape, &ps, &batch);
        let loss = tape.mse_loss(out, &Tensor::zeros(1, 8));
        tape.backward(loss);
        tape.accumulate_param_grads(&mut ps);
        let att_params: Vec<_> = ps
            .ids()
            .filter(|&id| ps.name(id).contains(".att"))
            .collect();
        assert_eq!(att_params.len(), 3, "one attention vector per relation");
        assert!(
            att_params.iter().any(|&id| ps.grad(id).norm() > 0.0),
            "no gradient reached any attention vector"
        );
    }

    #[test]
    fn homogeneous_ablation_differs_and_trains() {
        let g = kernel(true, 2);
        let batch = GraphBatch::single(&g);
        let make = |homogeneous: bool| {
            let mut ps = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(77);
            let cfg = GnnConfig {
                dim: 8,
                layers: 2,
                update: UpdateKind::Gru,
                homogeneous,
            };
            let gnn = HeteroGnn::new(&mut ps, "g", &cfg, &mut rng);
            let mut tape = Tape::new();
            let out = gnn.forward(&mut tape, &ps, &batch);
            (tape.value(out).row_slice(0).to_vec(), ps.len())
        };
        let (het, het_params) = make(false);
        let (hom, hom_params) = make(true);
        assert_ne!(het, hom, "homogeneous collapse changed nothing");
        assert!(
            hom_params < het_params,
            "homogeneous model must have fewer parameter tensors"
        );
    }

    #[test]
    fn gradients_reach_embedding_table() {
        let g = kernel(true, 1);
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let gnn = HeteroGnn::new(&mut ps, "g", &GnnConfig::default(), &mut rng);
        let batch = GraphBatch::single(&g);
        let mut tape = Tape::new();
        let out = gnn.forward(&mut tape, &ps, &batch);
        let loss = tape.mse_loss(out, &Tensor::zeros(1, 32));
        tape.backward(loss);
        tape.accumulate_param_grads(&mut ps);
        let emb_grad = ps.grad(gnn.embedding.table);
        assert!(emb_grad.norm() > 0.0, "no gradient into embedding table");
    }
}
