//! `mga-dae` — denoising autoencoder for distributed code vectors.
//!
//! The paper models the IR2Vec modality with a denoising autoencoder
//! (§3.2): the training vectors are scaled to a standard normal
//! distribution with Gaussian-rank scaling, corrupted with **swap noise**
//! (for each column, ~10 % of the values are replaced by a value sampled
//! from the *same column* at a random row) and the model is trained to
//! reconstruct the uncorrupted inputs. Sigmoid activations, three hidden
//! layers, self-supervised. After pre-training, the encoder half produces
//! the compressed code features that are late-fused with the GNN output.

use mga_nn::layers::{Activation, Linear};
use mga_nn::optim::AdamW;
use mga_nn::scaler::GaussRankScaler;
use mga_nn::tape::{FusedAct, Tape, Var};
use mga_nn::tensor::Tensor;
use mga_nn::ParamSet;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration of the DAE.
#[derive(Debug, Clone)]
pub struct DaeConfig {
    /// Input dimensionality (the IR2Vec vector width).
    pub input_dim: usize,
    /// Hidden width of encoder/decoder layers.
    pub hidden_dim: usize,
    /// Width of the code (bottleneck) layer — the extracted feature size.
    pub code_dim: usize,
    /// Fraction of entries swapped per column during training.
    pub swap_noise: f32,
    pub epochs: usize,
    pub lr: f32,
}

impl Default for DaeConfig {
    fn default() -> Self {
        DaeConfig {
            input_dim: 64,
            hidden_dim: 48,
            code_dim: 24,
            swap_noise: 0.10,
            epochs: 120,
            lr: 0.005,
        }
    }
}

/// The denoising autoencoder: `input → hidden → code → hidden → input`,
/// three hidden layers total, sigmoid activations (paper §6).
pub struct Dae {
    enc1: Linear,
    enc2: Linear,
    dec1: Linear,
    dec2: Linear,
    pub cfg: DaeConfig,
}

impl Dae {
    pub fn new(ps: &mut ParamSet, name: &str, cfg: DaeConfig, rng: &mut StdRng) -> Dae {
        let enc1 = Linear::new(
            ps,
            &format!("{name}.enc1"),
            cfg.input_dim,
            cfg.hidden_dim,
            Activation::Sigmoid,
            rng,
        );
        let enc2 = Linear::new(
            ps,
            &format!("{name}.enc2"),
            cfg.hidden_dim,
            cfg.code_dim,
            Activation::Sigmoid,
            rng,
        );
        let dec1 = Linear::new(
            ps,
            &format!("{name}.dec1"),
            cfg.code_dim,
            cfg.hidden_dim,
            Activation::Sigmoid,
            rng,
        );
        let dec2 = Linear::new(
            ps,
            &format!("{name}.dec2"),
            cfg.hidden_dim,
            cfg.input_dim,
            Activation::Identity,
            rng,
        );
        Dae {
            enc1,
            enc2,
            dec1,
            dec2,
            cfg,
        }
    }

    /// Encode inputs to the code layer (the features used for fusion).
    pub fn encode(&self, tape: &mut Tape, ps: &ParamSet, x: Var) -> Var {
        let h = self.enc1.forward_act(tape, ps, x, FusedAct::Sigmoid);
        self.enc2.forward_act(tape, ps, h, FusedAct::Sigmoid)
    }

    /// Full reconstruction pass.
    pub fn reconstruct(&self, tape: &mut Tape, ps: &ParamSet, x: Var) -> Var {
        let code = self.encode(tape, ps, x);
        let h = self.dec1.forward_act(tape, ps, code, FusedAct::Sigmoid);
        self.dec2.forward(tape, ps, h)
    }
}

/// Apply swap noise to a batch: for each column, each entry is replaced
/// with probability `p` by the value of the same column at a uniformly
/// random row.
pub fn swap_noise(data: &Tensor, p: f32, rng: &mut StdRng) -> Tensor {
    let (rows, cols) = data.shape();
    let mut out = data.clone();
    for c in 0..cols {
        for r in 0..rows {
            if rng.gen::<f32>() < p {
                let donor = rng.gen_range(0..rows);
                let v = data.get(donor, c);
                out.set(r, c, v);
            }
        }
    }
    out
}

/// Result of DAE pre-training.
pub struct TrainedDae {
    pub dae: Dae,
    pub params: ParamSet,
    pub scaler: GaussRankScaler,
    /// Final training reconstruction loss.
    pub final_loss: f32,
}

/// Pre-train a DAE on raw code vectors (self-supervised). The vectors are
/// Gaussian-rank scaled first; the returned [`TrainedDae`] owns the fitted
/// scaler so inference applies the same transform.
pub fn pretrain(vectors: &[Vec<f32>], cfg: DaeConfig, rng: &mut StdRng) -> TrainedDae {
    mga_obs::span!("dae.pretrain");
    assert!(!vectors.is_empty(), "no vectors to pre-train on");
    let dim = cfg.input_dim;
    assert!(
        vectors.iter().all(|v| v.len() == dim),
        "vector width mismatch"
    );

    let scaler = GaussRankScaler::fit(vectors, dim);
    let mut scaled: Vec<Vec<f32>> = vectors.to_vec();
    scaler.transform(&mut scaled);
    let flat: Vec<f32> = scaled.iter().flatten().copied().collect();
    let clean = Tensor::from_vec(vectors.len(), dim, flat);

    let mut params = ParamSet::new();
    let dae = Dae::new(&mut params, "dae", cfg, rng);
    let mut opt = AdamW::new(dae.cfg.lr).with_weight_decay(0.0);
    let mut final_loss = f32::MAX;
    let epoch_counter = mga_obs::metrics::counter("dae.epochs");
    for _ in 0..dae.cfg.epochs {
        mga_obs::span!("dae.epoch");
        epoch_counter.inc();
        let noisy = swap_noise(&clean, dae.cfg.swap_noise, rng);
        let mut tape = Tape::new();
        let x = tape.leaf(noisy);
        let rec = dae.reconstruct(&mut tape, &params, x);
        let loss = tape.mse_loss(rec, &clean);
        final_loss = tape.value(loss).get(0, 0);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut params);
        opt.step(&mut params);
    }
    mga_obs::metrics::gauge("dae.final_loss").set(final_loss as f64);
    TrainedDae {
        dae,
        params,
        scaler,
        final_loss,
    }
}

impl TrainedDae {
    /// Rebuild a trained DAE from a checkpoint: the architecture is
    /// reconstructed from `cfg` and the saved parameter values are
    /// restored by name. Errors (instead of panicking) on parameters the
    /// architecture does not declare or whose shapes differ, so corrupt
    /// checkpoints surface as typed load failures.
    pub fn from_parts(
        cfg: DaeConfig,
        named_params: Vec<(String, mga_nn::Tensor)>,
        scaler: GaussRankScaler,
    ) -> Result<TrainedDae, String> {
        let mut params = ParamSet::new();
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let dae = Dae::new(&mut params, "dae", cfg, &mut rng);
        for (name, value) in named_params {
            params
                .set_by_name(&name, value)
                .map_err(|e| format!("DAE checkpoint parameter {name}: {e}"))?;
        }
        Ok(TrainedDae {
            dae,
            params,
            scaler,
            final_loss: f32::NAN,
        })
    }

    /// Encode raw (unscaled) vectors to code features.
    pub fn encode_vectors(&self, vectors: &[Vec<f32>]) -> Tensor {
        mga_obs::span!("dae.encode");
        let mut scaled = vectors.to_vec();
        self.scaler.transform(&mut scaled);
        let flat: Vec<f32> = scaled.iter().flatten().copied().collect();
        let x = Tensor::from_vec(vectors.len(), self.dae.cfg.input_dim, flat);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let code = self.dae.encode(&mut tape, &self.params, xv);
        tape.value(code).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Synthetic tabular data with columnar structure: col j of row i is
    /// a noisy function of a low-dimensional latent.
    fn synthetic(rows: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| {
                let z1: f32 = rng.gen_range(-1.0..1.0);
                let z2: f32 = rng.gen_range(-1.0..1.0);
                (0..dim)
                    .map(|j| {
                        let base = if j % 2 == 0 { z1 } else { z2 };
                        base * (1.0 + j as f32 / dim as f32) + rng.gen_range(-0.05..0.05)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn swap_noise_preserves_column_value_multiset_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Tensor::from_vec(4, 2, vec![1., 10., 2., 20., 3., 30., 4., 40.]);
        let noisy = swap_noise(&data, 0.5, &mut rng);
        // Every noisy value must come from the same column of the original.
        for c in 0..2 {
            let col: Vec<f32> = (0..4).map(|r| data.get(r, c)).collect();
            for r in 0..4 {
                assert!(col.contains(&noisy.get(r, c)), "foreign value injected");
            }
        }
    }

    #[test]
    fn swap_noise_zero_probability_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Tensor::from_vec(3, 3, (0..9).map(|x| x as f32).collect());
        let noisy = swap_noise(&data, 0.0, &mut rng);
        assert_eq!(noisy, data);
    }

    #[test]
    fn swap_noise_rate_is_approximately_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows = 500;
        // Distinct values so a swap is (almost always) observable.
        let data = Tensor::from_vec(rows, 1, (0..rows).map(|x| x as f32).collect());
        let noisy = swap_noise(&data, 0.1, &mut rng);
        let changed = (0..rows)
            .filter(|&r| noisy.get(r, 0) != data.get(r, 0))
            .count();
        let rate = changed as f32 / rows as f32;
        assert!(
            (0.05..0.16).contains(&rate),
            "swap rate {rate} far from 10%"
        );
    }

    #[test]
    fn pretraining_reduces_reconstruction_loss() {
        let data = synthetic(64, 16, 7);
        let cfg = DaeConfig {
            input_dim: 16,
            hidden_dim: 12,
            code_dim: 6,
            epochs: 150,
            lr: 0.01,
            ..DaeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let trained = pretrain(&data, cfg, &mut rng);
        // The latent is 2-D; a 6-D code must reconstruct well below the
        // variance of the scaled data (~1.0).
        assert!(
            trained.final_loss < 0.5,
            "reconstruction loss too high: {}",
            trained.final_loss
        );
    }

    #[test]
    fn encode_produces_code_dim_features_in_unit_range() {
        let data = synthetic(32, 16, 9);
        let cfg = DaeConfig {
            input_dim: 16,
            hidden_dim: 12,
            code_dim: 5,
            epochs: 20,
            ..DaeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let trained = pretrain(&data, cfg, &mut rng);
        let codes = trained.encode_vectors(&data);
        assert_eq!(codes.shape(), (32, 5));
        // Sigmoid code layer: all features in (0, 1).
        assert!(codes.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Codes must not collapse to a constant.
        let first = codes.row_slice(0).to_vec();
        assert!((1..32).any(|r| codes.row_slice(r) != first.as_slice()));
    }

    #[test]
    fn encoding_is_deterministic_after_training() {
        let data = synthetic(16, 8, 11);
        let cfg = DaeConfig {
            input_dim: 8,
            hidden_dim: 6,
            code_dim: 3,
            epochs: 10,
            ..DaeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let trained = pretrain(&data, cfg, &mut rng);
        let a = trained.encode_vectors(&data);
        let b = trained.encode_vectors(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn similar_inputs_get_similar_codes() {
        let data = synthetic(64, 16, 13);
        let cfg = DaeConfig {
            input_dim: 16,
            hidden_dim: 12,
            code_dim: 6,
            epochs: 100,
            lr: 0.01,
            ..DaeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let trained = pretrain(&data, cfg, &mut rng);
        // Perturb one sample slightly; its code must stay closer to its
        // own code than to a random other sample's code.
        let mut perturbed = data[0].clone();
        for x in &mut perturbed {
            *x += 0.01;
        }
        let codes = trained.encode_vectors(&[data[0].clone(), perturbed, data[32].clone()]);
        let d01: f32 = codes
            .row_slice(0)
            .iter()
            .zip(codes.row_slice(1))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let d02: f32 = codes
            .row_slice(0)
            .iter()
            .zip(codes.row_slice(2))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(
            d01 < d02,
            "perturbed code ({d01}) not closer than random ({d02})"
        );
    }
}
