//! Optimizers: SGD with momentum and AdamW.
//!
//! The paper trains every model with AdamW (Loshchilov & Hutter), which
//! decouples weight decay from the adaptive moment update; SGD is kept as
//! the simple baseline for tests and ablations.

use crate::params::ParamSet;
use crate::tensor::Tensor;

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update from the accumulated gradients, then zero them.
    pub fn step(&mut self, ps: &mut ParamSet) {
        if self.velocity.is_empty() {
            self.velocity = ps
                .ids()
                .map(|id| Tensor::zeros(ps.value(id).rows(), ps.value(id).cols()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            ps.len(),
            "optimizer/param-set mismatch"
        );
        for (k, id) in ps.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let g = ps.grad(id).clone();
            let v = &mut self.velocity[k];
            v.scale_assign(self.momentum);
            v.axpy(1.0, &g);
            let v_step = v.clone();
            ps.value_mut(id).axpy(-self.lr, &v_step);
        }
        ps.zero_grads();
    }
}

/// A snapshot of [`AdamW`]'s mutable state (see [`AdamW::state`]).
#[derive(Clone)]
pub struct AdamWState {
    pub t: u64,
    pub lr: f32,
    pub m: Vec<Tensor>,
    pub v: Vec<Tensor>,
}

/// AdamW: Adam with decoupled weight decay.
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl AdamW {
    /// Defaults match the common PyTorch configuration
    /// (`betas=(0.9, 0.999)`, `eps=1e-8`, `weight_decay=0.01`).
    pub fn new(lr: f32) -> AdamW {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> AdamW {
        self.weight_decay = wd;
        self
    }

    /// Snapshot the adaptive state (step count, learning rate, first and
    /// second moments) for epoch rollback and checkpointing. Moments are
    /// empty before the first [`AdamW::step`].
    pub fn state(&self) -> AdamWState {
        AdamWState {
            t: self.t,
            lr: self.lr,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore a snapshot taken with [`AdamW::state`]. Together with
    /// restoring the parameter values this makes a later `step` sequence
    /// bitwise identical to one that never left the snapshot.
    pub fn restore(&mut self, state: AdamWState) {
        assert_eq!(
            state.m.len(),
            state.v.len(),
            "AdamW state m/v length mismatch"
        );
        self.t = state.t;
        self.lr = state.lr;
        self.m = state.m;
        self.v = state.v;
    }

    /// Apply one update from the accumulated gradients, then zero them.
    pub fn step(&mut self, ps: &mut ParamSet) {
        if self.m.is_empty() {
            self.m = ps
                .ids()
                .map(|id| Tensor::zeros(ps.value(id).rows(), ps.value(id).cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), ps.len(), "optimizer/param-set mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (k, id) in ps.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let g = ps.grad(id).clone();
            let m = &mut self.m[k];
            let v = &mut self.v[k];
            for ((mi, vi), &gi) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let m_snapshot = m.clone();
            let v_snapshot = v.clone();
            let value = ps.value_mut(id);
            for ((x, &mi), &vi) in value
                .data_mut()
                .iter_mut()
                .zip(m_snapshot.data())
                .zip(v_snapshot.data())
            {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                // Decoupled weight decay, applied directly to the weights.
                *x -= lr * (mhat / (vhat.sqrt() + eps) + wd * *x);
            }
        }
        ps.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimize ||x W - y||² over W; both optimizers must reduce the loss
    /// monotonically-ish and reach a small value.
    fn fit<F: FnMut(&mut ParamSet)>(mut step: F, ps: &mut ParamSet) -> (f32, f32) {
        let w = crate::params::ParamId(0);
        let x = Tensor::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 2., -1.]);
        let y = Tensor::from_vec(4, 1, vec![2.0, -1.0, 1.0, 5.0]);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..300 {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.param(ps, w);
            let pred = tape.matmul(xv, wv);
            let loss = tape.mse_loss(pred, &y);
            let lv = tape.value(loss).get(0, 0);
            if it == 0 {
                first = lv;
            }
            last = lv;
            tape.backward(loss);
            tape.accumulate_param_grads(ps);
            step(ps);
        }
        (first, last)
    }

    #[test]
    fn sgd_converges_on_least_squares() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::zeros(2, 1));
        let mut opt = Sgd::new(0.05, 0.9);
        let (first, last) = fit(|ps| opt.step(ps), &mut ps);
        assert!(
            last < first * 0.01,
            "SGD failed to converge: {first} -> {last}"
        );
    }

    #[test]
    fn adamw_converges_on_least_squares() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::zeros(2, 1));
        let mut opt = AdamW::new(0.05).with_weight_decay(0.0);
        let (first, last) = fit(|ps| opt.step(ps), &mut ps);
        assert!(
            last < first * 0.01,
            "AdamW failed to converge: {first} -> {last}"
        );
    }

    #[test]
    fn adamw_weight_decay_shrinks_weights() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::full(4, 4, 1.0));
        let mut opt = AdamW::new(0.01).with_weight_decay(0.5);
        // No gradient signal at all: decay alone must shrink the weights.
        for _ in 0..50 {
            opt.step(&mut ps);
        }
        assert!(ps.value(w).norm() < Tensor::full(4, 4, 1.0).norm());
    }

    #[test]
    fn adamw_state_roundtrip_is_bitwise_exact() {
        // Two optimizers over identical param sets; snapshot one mid-run,
        // perturb it, restore, and the remaining steps must match the
        // undisturbed twin bit for bit.
        let run = |snapshot_at: Option<usize>| -> Vec<f32> {
            let mut ps = ParamSet::new();
            let w = ps.add("w", Tensor::zeros(2, 1));
            let mut opt = AdamW::new(0.05);
            let x = Tensor::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 2., -1.]);
            let y = Tensor::from_vec(4, 1, vec![2.0, -1.0, 1.0, 5.0]);
            for it in 0..20 {
                let mut tape = Tape::new();
                let xv = tape.leaf(x.clone());
                let wv = tape.param(&ps, w);
                let pred = tape.matmul(xv, wv);
                let loss = tape.mse_loss(pred, &y);
                tape.backward(loss);
                tape.accumulate_param_grads(&mut ps);
                opt.step(&mut ps);
                if snapshot_at == Some(it) {
                    let saved_opt = opt.state();
                    let saved_w = ps.value(w).clone();
                    // Wander off for a few steps, then roll back.
                    opt.lr *= 3.0;
                    for _ in 0..5 {
                        ps.grad_mut(w).data_mut().fill(1.0);
                        opt.step(&mut ps);
                    }
                    opt.restore(saved_opt);
                    *ps.value_mut(w) = saved_w;
                    ps.zero_grads();
                }
            }
            ps.value(w).data().to_vec()
        };
        assert_eq!(run(None), run(Some(9)));
    }

    #[test]
    fn step_zeroes_grads() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(1, 1));
        ps.grad_mut(w).data_mut()[0] = 1.0;
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut ps);
        assert_eq!(ps.grad(w).data()[0], 0.0);
    }
}
