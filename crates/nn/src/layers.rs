//! Neural-network layers: `Linear`, `Mlp`, and the `GruCell` used by
//! gated graph networks.
//!
//! Layers own no tensors — they register parameters in a shared
//! [`ParamSet`] and hold [`ParamId`]s, so one optimizer can drive an
//! arbitrary composition of layers (the whole MGA model trains under a
//! single `AdamW`).

use crate::init;
use crate::params::{ParamId, ParamSet};
use crate::tape::{FusedAct, Tape, Var};
use rand::rngs::StdRng;

/// Activation applied by [`Mlp`] hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Sigmoid,
    Tanh,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Identity => x,
        }
    }

    /// The equivalent fused-kernel activation (see [`Tape::linear`]).
    pub fn fused(self) -> FusedAct {
        match self {
            Activation::Relu => FusedAct::Relu,
            Activation::Sigmoid => FusedAct::Sigmoid,
            Activation::Tanh => FusedAct::Tanh,
            Activation::Identity => FusedAct::Identity,
        }
    }
}

/// A fully connected layer `y = x W + b`.
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Register a new layer; Xavier init for saturating activations,
    /// Kaiming otherwise.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut StdRng,
    ) -> Linear {
        let w = match act {
            Activation::Relu => init::kaiming_uniform(in_dim, out_dim, rng),
            _ => init::xavier_uniform(in_dim, out_dim, rng),
        };
        let w = ps.add(format!("{name}.w"), w);
        let b = ps.add(
            format!("{name}.b"),
            crate::tensor::Tensor::zeros(1, out_dim),
        );
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward: `x [n × in] → [n × out]`.
    pub fn forward(&self, tape: &mut Tape, ps: &ParamSet, x: Var) -> Var {
        self.forward_act(tape, ps, x, FusedAct::Identity)
    }

    /// Forward with a fused activation: `act(x W + b)` in one tape op
    /// (single output buffer, single backward dispatch).
    pub fn forward_act(&self, tape: &mut Tape, ps: &ParamSet, x: Var, act: FusedAct) -> Var {
        let w = tape.param(ps, self.w);
        let b = tape.param(ps, self.b);
        tape.linear(x, w, b, act)
    }
}

/// A multi-layer perceptron with uniform hidden activation and a linear
/// output layer.
pub struct Mlp {
    pub layers: Vec<Linear>,
    pub hidden_act: Activation,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`; `hidden_act` is applied after every
    /// layer except the last.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        dims: &[usize],
        hidden_act: Activation,
        rng: &mut StdRng,
    ) -> Mlp {
        assert!(dims.len() >= 2, "MLP needs at least in/out dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() {
                    Activation::Identity
                } else {
                    hidden_act
                };
                Linear::new(ps, &format!("{name}.{i}"), w[0], w[1], act, rng)
            })
            .collect();
        Mlp { layers, hidden_act }
    }

    pub fn forward(&self, tape: &mut Tape, ps: &ParamSet, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i != last {
                self.hidden_act.fused()
            } else {
                FusedAct::Identity
            };
            h = layer.forward_act(tape, ps, h, act);
        }
        h
    }

    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.in_dim)
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim)
    }
}

/// A gated recurrent unit cell, the update function of gated graph neural
/// networks (Li et al., 2015):
///
/// ```text
/// z = σ(x W_z + h U_z + b_z)
/// r = σ(x W_r + h U_r + b_r)
/// h̃ = tanh(x W_h + (r ⊙ h) U_h + b_h)
/// h' = (1 − z) ⊙ h + z ⊙ h̃
/// ```
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    pub input_dim: usize,
    pub hidden_dim: usize,
}

impl GruCell {
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut StdRng,
    ) -> GruCell {
        let mut mat = |ps: &mut ParamSet, suffix: &str, r: usize, c: usize| {
            ps.add(format!("{name}.{suffix}"), init::xavier_uniform(r, c, rng))
        };
        let wz = mat(ps, "wz", input_dim, hidden_dim);
        let wr = mat(ps, "wr", input_dim, hidden_dim);
        let wh = mat(ps, "wh", input_dim, hidden_dim);
        let uz = mat(ps, "uz", hidden_dim, hidden_dim);
        let ur = mat(ps, "ur", hidden_dim, hidden_dim);
        let uh = mat(ps, "uh", hidden_dim, hidden_dim);
        let zeros = |ps: &mut ParamSet, suffix: &str| {
            ps.add(
                format!("{name}.{suffix}"),
                crate::tensor::Tensor::zeros(1, hidden_dim),
            )
        };
        let bz = zeros(ps, "bz");
        let br = zeros(ps, "br");
        let bh = zeros(ps, "bh");
        GruCell {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            input_dim,
            hidden_dim,
        }
    }

    /// One step: `x [n × input_dim]`, `h [n × hidden_dim]` → new hidden
    /// state `[n × hidden_dim]`.
    pub fn forward(&self, tape: &mut Tape, ps: &ParamSet, x: Var, h: Var) -> Var {
        // Each gate is one fused op: act(x W + h U + b).
        let gate =
            |tape: &mut Tape, w: ParamId, u: ParamId, b: ParamId, hin: Var, act: FusedAct| {
                let wv = tape.param(ps, w);
                let uv = tape.param(ps, u);
                let bv = tape.param(ps, b);
                tape.linear2(x, wv, hin, uv, bv, act)
            };
        let z = gate(tape, self.wz, self.uz, self.bz, h, FusedAct::Sigmoid);
        let r = gate(tape, self.wr, self.ur, self.br, h, FusedAct::Sigmoid);
        let rh = tape.mul(r, h);
        let htilde = gate(tape, self.wh, self.uh, self.bh, rh, FusedAct::Tanh);
        // h' = h + z ⊙ (h̃ − h)
        let diff = tape.sub(htilde, h);
        let update = tape.mul(z, diff);
        tape.add(h, update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamW;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(&mut ps, "l", 3, 2, Activation::Identity, &mut rng);
        // Force known weights.
        ps.value_mut(l.w).data_mut().fill(0.0);
        ps.value_mut(l.b).data_mut().copy_from_slice(&[1.0, -1.0]);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(4, 3));
        let y = l.forward(&mut tape, &ps, x);
        assert_eq!(tape.value(y).shape(), (4, 2));
        assert_eq!(tape.value(y).row_slice(2), &[1.0, -1.0]);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut ps, "xor", &[2, 8, 2], Activation::Tanh, &mut rng);
        let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let targets = [0u32, 1, 1, 0];
        let mut opt = AdamW::new(0.05).with_weight_decay(0.0);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let logits = mlp.forward(&mut tape, &ps, xv);
            let loss = tape.softmax_cross_entropy(logits, &targets);
            final_loss = tape.value(loss).get(0, 0);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut ps);
            opt.step(&mut ps);
        }
        assert!(final_loss < 0.05, "XOR loss stuck at {final_loss}");
        // Check predictions.
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let logits = mlp.forward(&mut tape, &ps, xv);
        let out = tape.value(logits);
        for (i, &t) in targets.iter().enumerate() {
            let row = out.row_slice(i);
            let pred = if row[1] > row[0] { 1 } else { 0 };
            assert_eq!(pred, t, "wrong XOR prediction for input {i}");
        }
    }

    #[test]
    fn gru_preserves_state_shape_and_gates() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let gru = GruCell::new(&mut ps, "gru", 4, 6, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(3, 4, 0.1));
        let h = tape.leaf(Tensor::zeros(3, 6));
        let h2 = gru.forward(&mut tape, &ps, x, h);
        assert_eq!(tape.value(h2).shape(), (3, 6));
        // New state must be bounded by tanh range blending.
        assert!(tape.value(h2).data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn gru_with_zero_update_gate_keeps_state() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(8);
        let gru = GruCell::new(&mut ps, "gru", 2, 3, &mut rng);
        // Saturate the z gate to 0 via a huge negative bias.
        ps.value_mut(gru.bz).data_mut().fill(-100.0);
        ps.value_mut(gru.wz).data_mut().fill(0.0);
        ps.value_mut(gru.uz).data_mut().fill(0.0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(2, 2, 0.7));
        let h0 = Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let h = tape.leaf(h0.clone());
        let h2 = gru.forward(&mut tape, &ps, x, h);
        for (a, b) in tape.value(h2).data().iter().zip(h0.data()) {
            assert!((a - b).abs() < 1e-5, "state leaked through closed gate");
        }
    }

    #[test]
    fn gru_gradients_flow_to_all_parameters() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(13);
        let gru = GruCell::new(&mut ps, "gru", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(2, 3, 0.5));
        let h = tape.leaf(Tensor::full(2, 4, 0.25));
        let h2 = gru.forward(&mut tape, &ps, x, h);
        let loss = tape.mse_loss(h2, &Tensor::zeros(2, 4));
        tape.backward(loss);
        tape.accumulate_param_grads(&mut ps);
        for id in ps.ids() {
            assert!(
                ps.grad(id).norm() > 0.0,
                "no gradient reached {}",
                ps.name(id)
            );
        }
    }
}
