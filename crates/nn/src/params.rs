//! Shared parameter storage for layers and optimizers.
//!
//! Layers register their weights in a [`ParamSet`] and keep only
//! [`ParamId`] handles; forward passes snapshot values onto the tape, and
//! optimizers walk the set applying updates from the accumulated gradients.

use crate::tensor::Tensor;

/// Handle to a parameter in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Typed failure from [`ParamSet::set_by_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetParamError {
    /// No parameter with the requested name is registered.
    UnknownName,
    /// The registered parameter has a different shape (a checkpoint from
    /// a different architecture).
    ShapeMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
}

impl std::fmt::Display for SetParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetParamError::UnknownName => write!(f, "unknown parameter name"),
            SetParamError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
        }
    }
}

impl std::error::Error for SetParamError {}

struct Entry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A flat collection of named parameters with gradient buffers.
#[derive(Default)]
pub struct ParamSet {
    entries: Vec<Entry>,
}

impl ParamSet {
    pub fn new() -> ParamSet {
        ParamSet::default()
    }

    /// Register a parameter; its gradient buffer starts zeroed.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.entries.push(Entry {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Zero every gradient buffer (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.data_mut().fill(0.0);
        }
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Iterate `(name, value)` pairs (checkpointing).
    pub fn iter_named(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|e| (e.name.as_str(), &e.value))
    }

    /// Overwrite a parameter's value by name. Both failure modes are
    /// typed (not panics) because they occur when loading checkpoints,
    /// where corrupt input must surface as an error the caller can map
    /// to its own `Malformed` variant.
    pub fn set_by_name(&mut self, name: &str, value: Tensor) -> Result<(), SetParamError> {
        for e in &mut self.entries {
            if e.name == name {
                if e.value.shape() != value.shape() {
                    return Err(SetParamError::ShapeMismatch {
                        expected: e.value.shape(),
                        got: value.shape(),
                    });
                }
                e.value = value;
                return Ok(());
            }
        }
        Err(SetParamError::UnknownName)
    }

    /// Clone every parameter value, in id order (epoch-rollback
    /// snapshots; pair with [`ParamSet::restore_values`]).
    pub fn clone_values(&self) -> Vec<Tensor> {
        self.entries.iter().map(|e| e.value.clone()).collect()
    }

    /// Restore values captured by [`ParamSet::clone_values`] on this same
    /// set (shapes and ordering must match — this is a rollback, not a
    /// checkpoint load).
    pub fn restore_values(&mut self, values: &[Tensor]) {
        assert_eq!(values.len(), self.entries.len(), "snapshot/param mismatch");
        for (e, v) in self.entries.iter_mut().zip(values) {
            assert_eq!(e.value.shape(), v.shape(), "snapshot shape mismatch");
            e.value = v.clone();
        }
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clip gradients to a maximum global L2 norm. Returns the pre-clip
    /// norm, so callers exporting it (diagnostics gauges) don't pay a
    /// second pass over the gradients.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in &mut self.entries {
                e.grad.scale_assign(s);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::full(2, 3, 1.0));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.name(w), "w");
        assert_eq!(ps.value(w).shape(), (2, 3));
        assert_eq!(ps.grad(w).sum(), 0.0);
        assert_eq!(ps.num_scalars(), 6);
    }

    #[test]
    fn zero_grads_resets() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(2, 2));
        ps.grad_mut(w).data_mut().fill(3.0);
        assert!(ps.grad_norm() > 0.0);
        ps.zero_grads();
        assert_eq!(ps.grad_norm(), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(1, 2));
        ps.grad_mut(w).data_mut().copy_from_slice(&[3.0, 4.0]);
        let pre = ps.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-5, "returns the pre-clip norm");
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
        // Already small: untouched.
        let before = ps.grad(w).clone();
        let pre = ps.clip_grad_norm(10.0);
        assert!((pre - 1.0).abs() < 1e-5);
        assert_eq!(ps.grad(w), &before);
    }
}
