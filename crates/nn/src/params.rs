//! Shared parameter storage for layers and optimizers.
//!
//! Layers register their weights in a [`ParamSet`] and keep only
//! [`ParamId`] handles; forward passes snapshot values onto the tape, and
//! optimizers walk the set applying updates from the accumulated gradients.

use crate::tensor::Tensor;

/// Handle to a parameter in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Typed failure from [`ParamSet::set_by_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetParamError {
    /// No parameter with the requested name is registered.
    UnknownName,
    /// The registered parameter has a different shape (a checkpoint from
    /// a different architecture).
    ShapeMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
}

impl std::fmt::Display for SetParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetParamError::UnknownName => write!(f, "unknown parameter name"),
            SetParamError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
        }
    }
}

impl std::error::Error for SetParamError {}

struct Entry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A flat collection of named parameters with gradient buffers.
#[derive(Default)]
pub struct ParamSet {
    entries: Vec<Entry>,
}

impl ParamSet {
    pub fn new() -> ParamSet {
        ParamSet::default()
    }

    /// Register a parameter; its gradient buffer starts zeroed.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.entries.push(Entry {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Zero every gradient buffer (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.data_mut().fill(0.0);
        }
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Iterate `(name, value)` pairs (checkpointing).
    pub fn iter_named(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|e| (e.name.as_str(), &e.value))
    }

    /// Overwrite a parameter's value by name. Both failure modes are
    /// typed (not panics) because they occur when loading checkpoints,
    /// where corrupt input must surface as an error the caller can map
    /// to its own `Malformed` variant.
    pub fn set_by_name(&mut self, name: &str, value: Tensor) -> Result<(), SetParamError> {
        for e in &mut self.entries {
            if e.name == name {
                if e.value.shape() != value.shape() {
                    return Err(SetParamError::ShapeMismatch {
                        expected: e.value.shape(),
                        got: value.shape(),
                    });
                }
                e.value = value;
                return Ok(());
            }
        }
        Err(SetParamError::UnknownName)
    }

    /// Clone every parameter value, in id order (epoch-rollback
    /// snapshots; pair with [`ParamSet::restore_values`]).
    pub fn clone_values(&self) -> Vec<Tensor> {
        self.entries.iter().map(|e| e.value.clone()).collect()
    }

    /// Restore values captured by [`ParamSet::clone_values`] on this same
    /// set (shapes and ordering must match — this is a rollback, not a
    /// checkpoint load).
    pub fn restore_values(&mut self, values: &[Tensor]) {
        assert_eq!(values.len(), self.entries.len(), "snapshot/param mismatch");
        for (e, v) in self.entries.iter_mut().zip(values) {
            assert_eq!(e.value.shape(), v.shape(), "snapshot shape mismatch");
            e.value = v.clone();
        }
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clip gradients to a maximum global L2 norm. Returns the pre-clip
    /// norm, so callers exporting it (diagnostics gauges) don't pay a
    /// second pass over the gradients.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in &mut self.entries {
                e.grad.scale_assign(s);
            }
        }
        norm
    }
}

/// One micro-batch's gradient accumulator: a buffer per parameter plus a
/// first-write flag so untouched parameters cost nothing to reduce.
///
/// A shard is written by exactly one micro-batch per pass (the
/// data-parallel epoch hands each worker its own shard), so accumulation
/// needs no synchronization; determinism comes from the fixed-shape tree
/// in [`GradShards::reduce_into`], not from ordering the writers.
pub struct GradShard {
    grads: Vec<Tensor>,
    written: Vec<bool>,
}

impl GradShard {
    /// Add `grad` into this shard's buffer for `id`. The first write of a
    /// pass copies instead of adding, which is what lets `begin_pass`
    /// skip zeroing every buffer.
    pub fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        let dst = &mut self.grads[id.0];
        debug_assert_eq!(dst.shape(), grad.shape(), "grad shard shape mismatch");
        if self.written[id.0] {
            dst.add_assign(grad);
        } else {
            dst.copy_from(grad);
            self.written[id.0] = true;
        }
    }
}

/// Per-micro-batch gradient shards with a deterministic tree reduction.
///
/// The data-parallel epoch gives each of its W micro-batches one
/// [`GradShard`]; after the parallel region, [`GradShards::reduce_into`]
/// folds them into the shared [`ParamSet`] gradients with a fixed-shape
/// binary tree (stride doubling: `shard[i] += shard[i + s]` for
/// `s = 1, 2, 4, …`). The tree's shape depends only on W — never on
/// `MGA_THREADS` or scheduling — so the summation order of every float,
/// and therefore the trained parameters, are identical for any thread
/// count.
#[derive(Default)]
pub struct GradShards {
    shards: Vec<GradShard>,
}

impl GradShards {
    pub fn new() -> GradShards {
        GradShards::default()
    }

    /// Number of shards currently allocated.
    pub fn width(&self) -> usize {
        self.shards.len()
    }

    /// Size (or re-size) to `width` shards shaped like `ps`, reusing
    /// existing buffers where shapes already match, and mark every shard
    /// unwritten for the coming pass.
    pub fn begin_pass(&mut self, ps: &ParamSet, width: usize) {
        self.shards.truncate(width);
        for shard in &mut self.shards {
            // Architecture changes between passes are not supported — a
            // shard set belongs to one model.
            debug_assert_eq!(shard.grads.len(), ps.len(), "shard/param count mismatch");
            shard.written.iter_mut().for_each(|w| *w = false);
        }
        while self.shards.len() < width {
            self.shards.push(GradShard {
                grads: ps
                    .ids()
                    .map(|id| {
                        let (r, c) = ps.value(id).shape();
                        Tensor::zeros(r, c)
                    })
                    .collect(),
                written: vec![false; ps.len()],
            });
        }
    }

    /// Disjoint mutable access for the parallel region: worker `w` owns
    /// element `w` of this slice for the duration of the pass.
    pub fn shards_mut(&mut self) -> &mut [GradShard] {
        &mut self.shards
    }

    /// Fold all shards into `ps`'s gradient buffers with the fixed-shape
    /// binary tree described on the type. Works for any shard count
    /// (non-powers of two leave lone left nodes that pass through
    /// unchanged). Shard buffers are left dirty; `begin_pass` resets the
    /// write flags, so nothing here needs zeroing.
    pub fn reduce_into(&mut self, ps: &mut ParamSet) {
        let w = self.shards.len();
        let mut stride = 1;
        while stride < w {
            let mut i = 0;
            while i + stride < w {
                let (left, right) = self.shards.split_at_mut(i + stride);
                let (dst, src) = (&mut left[i], &right[0]);
                for p in 0..dst.grads.len() {
                    if !src.written[p] {
                        continue;
                    }
                    if dst.written[p] {
                        dst.grads[p].add_assign(&src.grads[p]);
                    } else {
                        dst.grads[p].copy_from(&src.grads[p]);
                        dst.written[p] = true;
                    }
                }
                i += stride * 2;
            }
            stride *= 2;
        }
        if let Some(root) = self.shards.first() {
            for (p, written) in root.written.iter().enumerate() {
                if *written {
                    ps.grad_mut(ParamId(p)).add_assign(&root.grads[p]);
                }
            }
        }
    }
}

/// Sum scalars with the same fixed-shape binary tree as
/// [`GradShards::reduce_into`], so per-micro-batch losses combine in the
/// same thread-count-invariant order as the gradients they accompany.
pub fn tree_sum(xs: &[f32]) -> f32 {
    let mut buf: Vec<f32> = xs.to_vec();
    let n = buf.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            buf[i] += buf[i + stride];
            i += stride * 2;
        }
        stride *= 2;
    }
    buf.first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::full(2, 3, 1.0));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.name(w), "w");
        assert_eq!(ps.value(w).shape(), (2, 3));
        assert_eq!(ps.grad(w).sum(), 0.0);
        assert_eq!(ps.num_scalars(), 6);
    }

    #[test]
    fn zero_grads_resets() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(2, 2));
        ps.grad_mut(w).data_mut().fill(3.0);
        assert!(ps.grad_norm() > 0.0);
        ps.zero_grads();
        assert_eq!(ps.grad_norm(), 0.0);
    }

    /// The tree reduction must produce the exact same floats regardless
    /// of which "thread" filled which shard — the tree shape is a
    /// function of the shard count alone.
    #[test]
    fn tree_reduce_matches_manual_tree_order() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::zeros(1, 3));
        let b = ps.add("b", Tensor::zeros(1, 2));
        let vals = |w: usize| (w as f32 + 1.0) * 0.1;

        let mut shards = GradShards::new();
        shards.begin_pass(&ps, 5);
        for (w, shard) in shards.shards_mut().iter_mut().enumerate() {
            shard.accumulate(a, &Tensor::full(1, 3, vals(w)));
            if w != 2 {
                // Param b untouched by shard 2: lone-node pass-through.
                shard.accumulate(b, &Tensor::full(1, 2, 10.0 * vals(w)));
            }
        }
        shards.reduce_into(&mut ps);

        // Stride-doubling over 5 shards: ((0+1)+(2+3))+4.
        let expect_a = ((vals(0) + vals(1)) + (vals(2) + vals(3))) + vals(4);
        let expect_b = ((10.0 * vals(0) + 10.0 * vals(1)) + 10.0 * vals(3)) + 10.0 * vals(4);
        for &x in ps.grad(a).data() {
            assert_eq!(x, expect_a);
        }
        for &x in ps.grad(b).data() {
            assert_eq!(x, expect_b);
        }
        assert_eq!(
            tree_sum(&[vals(0), vals(1), vals(2), vals(3), vals(4)]),
            expect_a
        );
    }

    /// begin_pass reuses buffers across passes and reduce adds into any
    /// gradient already present in the ParamSet.
    #[test]
    fn shards_reuse_across_passes_and_add_into_existing_grads() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(2, 2));
        let mut shards = GradShards::new();
        for pass in 0..2 {
            shards.begin_pass(&ps, 3);
            assert_eq!(shards.width(), 3);
            for shard in shards.shards_mut() {
                shard.accumulate(w, &Tensor::full(2, 2, 1.0));
                shard.accumulate(w, &Tensor::full(2, 2, 0.5)); // second write adds
            }
            ps.grad_mut(w).data_mut().fill(100.0);
            shards.reduce_into(&mut ps);
            for &x in ps.grad(w).data() {
                assert_eq!(x, 100.0 + 3.0 * 1.5, "pass {pass}");
            }
            ps.zero_grads();
        }
    }

    #[test]
    fn tree_sum_edge_cases() {
        assert_eq!(tree_sum(&[]), 0.0);
        assert_eq!(tree_sum(&[2.5]), 2.5);
        assert_eq!(tree_sum(&[1.0, 2.0]), 3.0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(1, 2));
        ps.grad_mut(w).data_mut().copy_from_slice(&[3.0, 4.0]);
        let pre = ps.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-5, "returns the pre-clip norm");
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
        // Already small: untouched.
        let before = ps.grad(w).clone();
        let pre = ps.clip_grad_norm(10.0);
        assert!((pre - 1.0).abs() < 1e-5);
        assert_eq!(ps.grad(w), &before);
    }
}
