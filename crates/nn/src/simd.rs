//! Explicit-SIMD microkernels with per-shape dispatch.
//!
//! The release profile already pins `x86-64-v3`, so the scalar panels in
//! [`crate::tensor`] autovectorize — but they stream every partial sum
//! through memory (`out[i][j] += a·b` is a load + store per k step).
//! The AVX2 microkernels here hold a register-blocked tile of the output
//! (4 rows × 16 columns) across the whole k loop, cutting the inner-loop
//! memory traffic to the two `b`-row loads and four `a` broadcasts that
//! feed each 16-FLOP step.
//!
//! **Bitwise parity is structural.** For every output element both
//! backends execute the identical scalar-semantics sequence: ascending-k
//! accumulation, one `mul` + one `add` rounding step per term
//! (`_mm256_mul_ps`/`_mm256_add_ps`, never FMA — Rust never contracts),
//! and the same `a == 0.0` skip the scalar kernel performs. A SIMD lane
//! is just eight independent scalar pipelines, so results match the
//! scalar fallback bit for bit; `tests/simd_parity.rs` proves it across
//! odd shapes and thread counts, and the figure binaries' stdout stays
//! byte-identical with SIMD on or off.
//!
//! Dispatch is resolved *per shape*, once, at plan time: a
//! [`DispatchTable`] memoizes the kernel choice per `(m, k, n)` so the
//! steady-state hot loop calls a cached function pointer — no env reads,
//! no feature detection, no branches. The backend decision itself is a
//! process-wide cached check: `is_x86_feature_detected!("avx2")` gated
//! by the `MGA_SIMD=0` kill switch. Selections are counted in the
//! `kernel.dispatch_avx2` / `kernel.dispatch_scalar` metrics.

/// Cache block edge for the k dimension in the scalar panels (kept from
/// the original kernel; per-element accumulation order is unaffected).
const BLOCK_K: usize = 64;

/// A row-panel matmul kernel: `out(m×n) += a(m×k) × b(k×n)`.
pub type PanelFn = fn(&mut [f32], &[f32], usize, usize, &[f32], usize);

/// A row-panel `aᵀ×b` kernel: output rows `[lo, hi)` of
/// `a(rows×acols)ᵀ × b(rows×n)` accumulated into `out`.
pub type TPanelFn = fn(&mut [f32], &[f32], &[f32], usize, usize, usize, usize, usize);

/// A row-panel `a×bᵀ` kernel: `out(m×n) = a(m×k) × b(n×k)ᵀ`
/// (overwrite), or `out += …` when the final flag is set. Each output
/// element is one full ascending-k dot product followed by a single
/// store or add.
pub type MtPanelFn = fn(&mut [f32], &[f32], &[f32], usize, usize, usize, bool);

// ---- backend detection -----------------------------------------------------

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = undetected, 1 = scalar, 2 = avx2.
static BACKEND: AtomicU8 = AtomicU8::new(0);

fn detect() -> u8 {
    let kill = std::env::var("MGA_SIMD").is_ok_and(|v| v == "0");
    #[cfg(target_arch = "x86_64")]
    let have = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let have = false;
    if have && !kill {
        2
    } else {
        1
    }
}

/// Whether the AVX2 backend is active (CPU support present and not
/// disabled via `MGA_SIMD=0`). Read once per process and cached.
#[inline]
pub fn simd_enabled() -> bool {
    let s = BACKEND.load(Ordering::Relaxed);
    if s != 0 {
        return s == 2;
    }
    let d = detect();
    BACKEND.store(d, Ordering::Relaxed);
    d == 2
}

/// Whether the CPU supports the AVX2 kernels at all, ignoring the
/// `MGA_SIMD` kill switch — lets the parity tests run both backends in
/// one process.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---- selection -------------------------------------------------------------

/// Minimum column count for the vector kernels; below one lane the tile
/// machinery is pure overhead and the scalar panel wins.
const MIN_SIMD_N: usize = 8;

fn count(simd: bool) {
    if simd {
        mga_obs::metrics::counter("kernel.dispatch_avx2").inc();
    } else {
        mga_obs::metrics::counter("kernel.dispatch_scalar").inc();
    }
}

/// Uncounted kernel choice for the self-selecting `tensor::*_into`
/// wrappers — one cached atomic load plus a width check, cheap enough
/// for per-call use in the backward pass. The metric-counting
/// [`select_matmul`] family wraps these for plan-time resolution.
#[inline]
pub fn choose_matmul(n: usize) -> PanelFn {
    if simd_enabled() && n >= MIN_SIMD_N {
        avx2_matmul_panel
    } else {
        scalar_matmul_panel
    }
}

/// Uncounted dense-kernel choice (see [`choose_matmul`]).
#[inline]
pub fn choose_dense(n: usize) -> PanelFn {
    if simd_enabled() && n >= MIN_SIMD_N {
        avx2_dense_panel
    } else {
        scalar_dense_panel
    }
}

/// Uncounted `aᵀ×b` kernel choice (see [`choose_matmul`]).
#[inline]
pub fn choose_t_matmul(n: usize) -> TPanelFn {
    if simd_enabled() && n >= MIN_SIMD_N {
        avx2_t_panel
    } else {
        scalar_t_panel
    }
}

/// Uncounted `a×bᵀ` kernel choice (see [`choose_matmul`]). `n` is the
/// output width — the row count of `b`.
#[inline]
pub fn choose_mt_matmul(n: usize) -> MtPanelFn {
    if simd_enabled() && n >= MIN_SIMD_N {
        avx2_mt_panel
    } else {
        scalar_mt_panel
    }
}

/// Select the `out += a×b` panel kernel (zero-skip semantics, the
/// forward-path flavor) for a `(m, k, n)` problem, counting the decision
/// in the `kernel.dispatch_*` metrics — call this at plan/tape-compile
/// time, once per shape. The choice depends only on `n` and the backend,
/// so a selection made at plan-compile time for one row count stays
/// valid for every micro-batch size.
pub fn select_matmul(_m: usize, _k: usize, n: usize) -> PanelFn {
    let f = choose_matmul(n);
    count(simd_enabled() && n >= MIN_SIMD_N);
    f
}

/// Select the dense (no zero-skip) panel kernel — the backward-path
/// flavor used for `G · Wᵀ` against a pre-transposed operand. Counted;
/// see [`select_matmul`].
pub fn select_dense(_m: usize, _k: usize, n: usize) -> PanelFn {
    let f = choose_dense(n);
    count(simd_enabled() && n >= MIN_SIMD_N);
    f
}

/// Select the `aᵀ×b` panel kernel (weight gradients). Counted; see
/// [`select_matmul`].
pub fn select_t_matmul(_rows: usize, _acols: usize, n: usize) -> TPanelFn {
    let f = choose_t_matmul(n);
    count(simd_enabled() && n >= MIN_SIMD_N);
    f
}

/// Select the `a×bᵀ` dot-product panel kernel. Counted; see
/// [`select_matmul`].
pub fn select_mt_matmul(_m: usize, _k: usize, n: usize) -> MtPanelFn {
    let f = choose_mt_matmul(n);
    count(simd_enabled() && n >= MIN_SIMD_N);
    f
}

/// Per-shape kernel memo: the tape and the inference plan resolve their
/// kernels through one of these, so each distinct `(m, k, n)` pays for
/// selection (and its dispatch counter) exactly once and every replay or
/// request hits a cached function pointer.
#[derive(Default)]
pub struct DispatchTable {
    matmul: Vec<((usize, usize, usize), PanelFn)>,
    dense: Vec<((usize, usize, usize), PanelFn)>,
    mt: Vec<((usize, usize, usize), MtPanelFn)>,
}

impl DispatchTable {
    pub fn new() -> DispatchTable {
        DispatchTable::default()
    }

    pub fn matmul(&mut self, m: usize, k: usize, n: usize) -> PanelFn {
        let key = (m, k, n);
        if let Some(&(_, f)) = self.matmul.iter().find(|(s, _)| *s == key) {
            return f;
        }
        let f = select_matmul(m, k, n);
        self.matmul.push((key, f));
        f
    }

    pub fn dense(&mut self, m: usize, k: usize, n: usize) -> PanelFn {
        let key = (m, k, n);
        if let Some(&(_, f)) = self.dense.iter().find(|(s, _)| *s == key) {
            return f;
        }
        let f = select_dense(m, k, n);
        self.dense.push((key, f));
        f
    }

    pub fn matmul_t(&mut self, m: usize, k: usize, n: usize) -> MtPanelFn {
        let key = (m, k, n);
        if let Some(&(_, f)) = self.mt.iter().find(|(s, _)| *s == key) {
            return f;
        }
        let f = select_mt_matmul(m, k, n);
        self.mt.push((key, f));
        f
    }
}

// ---- scalar panels (the portable fallback) ---------------------------------

/// `out += a(m×k) × b(k×n)`, i-k-j order, k-blocked, skipping zero `a`
/// elements. This is the historical kernel every other backend must
/// match bit for bit.
pub fn scalar_matmul_panel(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    for k0 in (0..k).step_by(BLOCK_K) {
        let k1 = (k0 + BLOCK_K).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let av = arow[kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// `out += a(m×k) × b(k×n)` without the zero skip: every product is
/// accumulated, preserving `-0.0` and NaN propagation term for term.
pub fn scalar_dense_panel(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    for k0 in (0..k).step_by(BLOCK_K) {
        let k1 = (k0 + BLOCK_K).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let av = arow[kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Output rows `[lo, hi)` of `aᵀ × b` (`a` is `rows × acols`, `b` is
/// `rows × n`), accumulating in full ascending-k order with the zero
/// skip — the historical `t_matmul_panel`.
#[allow(clippy::too_many_arguments)]
pub fn scalar_t_panel(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    rows: usize,
    acols: usize,
    n: usize,
    lo: usize,
    hi: usize,
) {
    for k in 0..rows {
        let arow = &a[k * acols..(k + 1) * acols];
        let brow = &b[k * n..(k + 1) * n];
        for i in lo..hi {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[(i - lo) * n..(i - lo + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out = a(m×k) × b(n×k)ᵀ` (or `+=` when `acc`): each output element is
/// one full ascending-k dot product into a fresh accumulator, then a
/// single store or add — the historical `matmul_t_panel` every other
/// backend must match bit for bit. No zero skip: dot products are dense.
pub fn scalar_mt_panel(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut dot = 0.0f32;
            for kk in 0..k {
                dot += arow[kk] * brow[kk];
            }
            if acc {
                *o += dot;
            } else {
                *o = dot;
            }
        }
    }
}

// ---- AVX2 panels -----------------------------------------------------------

// Safe wrappers: selection only returns these when `simd_enabled` (or
// a test checked `avx2_available`), so the target-feature contract
// holds. On non-x86_64 they fall back to scalar and are never selected.

pub fn avx2_matmul_panel(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        x86::matmul_panel::<true>(out, a, m, k, b, n)
    }
    #[cfg(not(target_arch = "x86_64"))]
    scalar_matmul_panel(out, a, m, k, b, n)
}

pub fn avx2_dense_panel(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        x86::matmul_panel::<false>(out, a, m, k, b, n)
    }
    #[cfg(not(target_arch = "x86_64"))]
    scalar_dense_panel(out, a, m, k, b, n)
}

#[allow(clippy::too_many_arguments)]
pub fn avx2_t_panel(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    rows: usize,
    acols: usize,
    n: usize,
    lo: usize,
    hi: usize,
) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        x86::t_panel(out, a, b, rows, acols, n, lo, hi)
    }
    #[cfg(not(target_arch = "x86_64"))]
    scalar_t_panel(out, a, b, rows, acols, n, lo, hi);
}

#[allow(clippy::too_many_arguments)]
pub fn avx2_mt_panel(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        x86::mt_panel(out, a, b, m, k, n, acc)
    }
    #[cfg(not(target_arch = "x86_64"))]
    scalar_mt_panel(out, a, b, m, k, n, acc);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    // Index loops over the fixed-size register-accumulator arrays keep
    // the tile structure explicit; iterator rewrites obscure it.
    #![allow(clippy::needless_range_loop)]
    use std::arch::x86_64::*;

    /// Register-blocked `out += a×b` row panel. Tiles the output as
    /// `MR × (8·NV)` blocks of ymm accumulators held across the whole k
    /// loop; per element the arithmetic is ascending-k `mul` + `add`
    /// with the same `a == 0.0` skip as the scalar kernel (`SKIP`), so
    /// the result is bitwise identical to it. Column tails below one
    /// lane run the scalar element loop.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available. Slice bounds are debug
    /// asserted; all pointer arithmetic stays within the slices.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_panel<const SKIP: bool>(
        out: &mut [f32],
        a: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        n: usize,
    ) {
        debug_assert_eq!(out.len(), m * n);
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut j = 0usize;
        while j + 16 <= n {
            let mut i = 0usize;
            while i + 4 <= m {
                tile::<SKIP, 4, 2>(op, ap, bp, k, n, i, j);
                i += 4;
            }
            while i < m {
                tile::<SKIP, 1, 2>(op, ap, bp, k, n, i, j);
                i += 1;
            }
            j += 16;
        }
        if j + 8 <= n {
            let mut i = 0usize;
            while i + 4 <= m {
                tile::<SKIP, 4, 1>(op, ap, bp, k, n, i, j);
                i += 4;
            }
            while i < m {
                tile::<SKIP, 1, 1>(op, ap, bp, k, n, i, j);
                i += 1;
            }
            j += 8;
        }
        if j < n {
            scalar_cols::<SKIP>(out, a, m, k, b, n, j);
        }
    }

    /// One `MR × (8·NV)` output tile: load accumulators, stream k,
    /// store. `a` is indexed `(i0+r)·k + kk`, `b` row-major.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn tile<const SKIP: bool, const MR: usize, const NV: usize>(
        out: *mut f32,
        a: *const f32,
        b: *const f32,
        k: usize,
        n: usize,
        i0: usize,
        j0: usize,
    ) {
        let mut acc = [[_mm256_setzero_ps(); NV]; MR];
        for r in 0..MR {
            for v in 0..NV {
                acc[r][v] = _mm256_loadu_ps(out.add((i0 + r) * n + j0 + 8 * v));
            }
        }
        for kk in 0..k {
            let brow = b.add(kk * n + j0);
            let mut bv = [_mm256_setzero_ps(); NV];
            for v in 0..NV {
                bv[v] = _mm256_loadu_ps(brow.add(8 * v));
            }
            for r in 0..MR {
                let av = *a.add((i0 + r) * k + kk);
                if SKIP && av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                for v in 0..NV {
                    // mul + add as two rounding steps — never FMA — to
                    // match the scalar `*o += av * bv` exactly.
                    acc[r][v] = _mm256_add_ps(acc[r][v], _mm256_mul_ps(va, bv[v]));
                }
            }
        }
        for r in 0..MR {
            for v in 0..NV {
                _mm256_storeu_ps(out.add((i0 + r) * n + j0 + 8 * v), acc[r][v]);
            }
        }
    }

    /// Scalar element loop for the `< 8`-wide column tail (still
    /// ascending-k per element, still the `SKIP` semantics).
    fn scalar_cols<const SKIP: bool>(
        out: &mut [f32],
        a: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        n: usize,
        j0: usize,
    ) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n + j0..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if SKIP && av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n + j0..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Register-blocked `aᵀ×b` panel for output rows `[lo, hi)` — the
    /// weight-gradient kernel. Same tile discipline; `a` is walked down
    /// column `i` (stride `acols`) for the broadcast operand.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn t_panel(
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        rows: usize,
        acols: usize,
        n: usize,
        lo: usize,
        hi: usize,
    ) {
        debug_assert_eq!(out.len(), (hi - lo) * n);
        debug_assert_eq!(a.len(), rows * acols);
        debug_assert_eq!(b.len(), rows * n);
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut j = 0usize;
        while j + 16 <= n {
            let mut i = lo;
            while i + 4 <= hi {
                t_tile::<4, 2>(op, ap, bp, rows, acols, n, lo, i, j);
                i += 4;
            }
            while i < hi {
                t_tile::<1, 2>(op, ap, bp, rows, acols, n, lo, i, j);
                i += 1;
            }
            j += 16;
        }
        if j + 8 <= n {
            let mut i = lo;
            while i + 4 <= hi {
                t_tile::<4, 1>(op, ap, bp, rows, acols, n, lo, i, j);
                i += 4;
            }
            while i < hi {
                t_tile::<1, 1>(op, ap, bp, rows, acols, n, lo, i, j);
                i += 1;
            }
            j += 8;
        }
        if j < n {
            // Scalar tail columns: historical k-outer loop restricted to
            // columns [j, n) — identical per-element order.
            for k in 0..rows {
                let arow = &a[k * acols..(k + 1) * acols];
                let brow = &b[k * n + j..(k + 1) * n];
                for i in lo..hi {
                    let av = arow[i];
                    if av == 0.0 {
                        continue;
                    }
                    let orow = &mut out[(i - lo) * n + j..(i - lo + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }

    /// Vectorized `a×bᵀ` panel. Lanes run across eight *output columns*
    /// (rows of `b`); the column's k-strided values come in through
    /// `_mm256_i32gather_ps`, so each lane is a complete ascending-k
    /// scalar dot-product chain (one `mul` + one `add` per term into a
    /// zeroed accumulator) — bitwise identical to [`super::scalar_mt_panel`].
    /// Four `a` rows share each gathered vector to amortize the gather.
    /// The final store is the scalar kernel's single `=` or `+=`.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn mt_panel(
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        acc: bool,
    ) {
        debug_assert_eq!(out.len(), m * n);
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        // Gather offsets are i32 lane indices relative to `b[j0*k]`; the
        // largest is 8k-1.
        debug_assert!(k <= i32::MAX as usize / 8, "k too large for i32 gather");
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut j = 0usize;
        while j + 8 <= n {
            let mut i = 0usize;
            while i + 4 <= m {
                mt_tile::<4>(op, ap, bp, k, n, i, j, acc);
                i += 4;
            }
            while i < m {
                mt_tile::<1>(op, ap, bp, k, n, i, j, acc);
                i += 1;
            }
            j += 8;
        }
        if j < n {
            // Scalar tail columns [j, n): the historical per-element dot.
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n + j..(i + 1) * n];
                for (jj, o) in (j..n).zip(orow.iter_mut()) {
                    let brow = &b[jj * k..(jj + 1) * k];
                    let mut dot = 0.0f32;
                    for kk in 0..k {
                        dot += arow[kk] * brow[kk];
                    }
                    if acc {
                        *o += dot;
                    } else {
                        *o = dot;
                    }
                }
            }
        }
    }

    /// One `MR × 8` tile of `a×bᵀ`: eight columns per gather, `MR` rows
    /// broadcast against it.
    #[target_feature(enable = "avx2")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn mt_tile<const MR: usize>(
        out: *mut f32,
        a: *const f32,
        b: *const f32,
        k: usize,
        n: usize,
        i0: usize,
        j0: usize,
        acc: bool,
    ) {
        let ki = k as i32;
        // Lane l reads column j0+l of the output — row j0+l of `b`,
        // which starts l·k floats past `b[j0·k]`.
        let lanes = _mm256_setr_epi32(0, ki, 2 * ki, 3 * ki, 4 * ki, 5 * ki, 6 * ki, 7 * ki);
        let ones = _mm256_set1_epi32(1);
        let bbase = b.add(j0 * k);
        let mut dotv = [_mm256_setzero_ps(); MR];
        let mut idx = lanes;
        for kk in 0..k {
            let bv = _mm256_i32gather_ps::<4>(bbase, idx);
            idx = _mm256_add_epi32(idx, ones);
            for r in 0..MR {
                let va = _mm256_set1_ps(*a.add((i0 + r) * k + kk));
                // mul + add as two rounding steps — never FMA — to match
                // the scalar `dot += a * b` exactly.
                dotv[r] = _mm256_add_ps(dotv[r], _mm256_mul_ps(va, bv));
            }
        }
        for r in 0..MR {
            let o = out.add((i0 + r) * n + j0);
            let v = if acc {
                _mm256_add_ps(_mm256_loadu_ps(o), dotv[r])
            } else {
                dotv[r]
            };
            _mm256_storeu_ps(o, v);
        }
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn t_tile<const MR: usize, const NV: usize>(
        out: *mut f32,
        a: *const f32,
        b: *const f32,
        rows: usize,
        acols: usize,
        n: usize,
        lo: usize,
        i0: usize,
        j0: usize,
    ) {
        let mut acc = [[_mm256_setzero_ps(); NV]; MR];
        for r in 0..MR {
            for v in 0..NV {
                acc[r][v] = _mm256_loadu_ps(out.add((i0 - lo + r) * n + j0 + 8 * v));
            }
        }
        for kk in 0..rows {
            let brow = b.add(kk * n + j0);
            let mut bv = [_mm256_setzero_ps(); NV];
            for v in 0..NV {
                bv[v] = _mm256_loadu_ps(brow.add(8 * v));
            }
            let acol = a.add(kk * acols + i0);
            for r in 0..MR {
                let av = *acol.add(r);
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                for v in 0..NV {
                    acc[r][v] = _mm256_add_ps(acc[r][v], _mm256_mul_ps(va, bv[v]));
                }
            }
        }
        for r in 0..MR {
            for v in 0..NV {
                _mm256_storeu_ps(out.add((i0 - lo + r) * n + j0 + 8 * v), acc[r][v]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(len: usize, seed: u64, zero_frac: bool) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
                if zero_frac && (state >> 61) == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn avx2_matmul_matches_scalar_bitwise() {
        if !avx2_available() {
            return;
        }
        for &(m, k, n) in &[
            (1usize, 13usize, 24usize),
            (4, 64, 16),
            (5, 7, 9),
            (3, 1, 33),
            (7, 0, 12),
            (0, 5, 8),
            (9, 17, 8),
            (2, 3, 7),
        ] {
            let a = seeded(m * k, 1 + (m * 31 + k) as u64, true);
            let b = seeded(k * n, 77 + n as u64, false);
            let mut o1 = seeded(m * n, 5, false);
            let mut o2 = o1.clone();
            scalar_matmul_panel(&mut o1, &a, m, k, &b, n);
            avx2_matmul_panel(&mut o2, &a, m, k, &b, n);
            let w1: Vec<u32> = o1.iter().map(|v| v.to_bits()).collect();
            let w2: Vec<u32> = o2.iter().map(|v| v.to_bits()).collect();
            assert_eq!(w1, w2, "({m},{k},{n}) diverged");
        }
    }

    #[test]
    fn avx2_mt_matches_scalar_bitwise() {
        if !avx2_available() {
            return;
        }
        for &(m, k, n) in &[
            (1usize, 13usize, 24usize),
            (4, 64, 16),
            (5, 7, 9),
            (3, 1, 33),
            (7, 0, 12),
            (0, 5, 8),
            (9, 17, 8),
            (2, 3, 7),
            (6, 24, 10),
        ] {
            for &acc in &[false, true] {
                let a = seeded(m * k, 1 + (m * 31 + k) as u64, true);
                let b = seeded(n * k, 77 + n as u64, false);
                let mut o1 = seeded(m * n, 5, false);
                let mut o2 = o1.clone();
                scalar_mt_panel(&mut o1, &a, &b, m, k, n, acc);
                avx2_mt_panel(&mut o2, &a, &b, m, k, n, acc);
                let w1: Vec<u32> = o1.iter().map(|v| v.to_bits()).collect();
                let w2: Vec<u32> = o2.iter().map(|v| v.to_bits()).collect();
                assert_eq!(w1, w2, "({m},{k},{n}) acc={acc} diverged");
            }
        }
    }

    #[test]
    fn dispatch_table_memoizes() {
        let mut t = DispatchTable::new();
        let f1 = t.matmul(4, 8, 16);
        let f2 = t.matmul(4, 8, 16);
        assert!(std::ptr::fn_addr_eq(f1, f2));
        assert_eq!(t.matmul.len(), 1);
        let _ = t.matmul(4, 8, 17);
        assert_eq!(t.matmul.len(), 2);
    }

    #[test]
    fn selection_respects_min_width() {
        // n < 8 must always pick the scalar panel, whatever the backend.
        let f = select_matmul(64, 64, 7);
        assert!(std::ptr::fn_addr_eq(f, scalar_matmul_panel as PanelFn));
    }
}
