//! Size-classed buffer recycling behind the tape's memory plan.
//!
//! The [`Arena`] owns two things: a free list of `f32` buffers keyed by
//! exact element count (training replays the same op sequence every
//! epoch, so lengths repeat exactly — no rounding classes needed), and
//! the allocation accounting the `tape.alloc_bytes` / `tape.arena_reuse`
//! metrics report. Everything that allocates or recycles a tape tensor
//! funnels its bookkeeping through here, which is what lets
//! `validate_trace` assert that steady-state epochs allocate nothing.
//!
//! Two allocation flavors keep the steady state exactly zero-alloc:
//! [`Arena::take`] (transient scratch — recycled through the free list
//! via [`Arena::give`] within the same pass) and
//! [`Arena::take_persistent`] (buffers adopted into long-lived node
//! slots — allocated directly so they can never starve the scratch pool;
//! their reuse happens at the node level across passes, not here).

use std::collections::BTreeMap;

use crate::aligned::{self, AlignedVec};

/// Buffer pool + allocation accounting for one [`crate::tape::Tape`].
#[derive(Default)]
pub struct Arena {
    /// Free buffers by exact length. `BTreeMap` over `HashMap` because
    /// the handful of distinct size classes makes ordered lookup cheap
    /// and deterministic.
    free: BTreeMap<usize, Vec<AlignedVec>>,
    alloc_bytes: u64,
    reuse_count: u64,
}

impl Arena {
    pub fn new() -> Arena {
        Arena::default()
    }

    /// A transient buffer of exactly `len` elements with **unspecified
    /// contents** (recycled buffers keep their previous values); the
    /// caller must fully overwrite it and return it with [`Arena::give`]
    /// before the pass ends. Always 64-byte aligned (the microkernel
    /// alignment contract is enforced here, at the source).
    pub fn take(&mut self, len: usize) -> AlignedVec {
        if let Some(bufs) = self.free.get_mut(&len) {
            if let Some(buf) = bufs.pop() {
                self.reuse_count += 1;
                debug_assert!(aligned::is_aligned(&buf), "recycled buffer lost alignment");
                return buf;
            }
        }
        self.alloc_bytes += (len * std::mem::size_of::<f32>()) as u64;
        AlignedVec::zeroed(len)
    }

    /// Like [`Arena::take`] but zero-filled (for accumulation targets).
    pub fn take_zeroed(&mut self, len: usize) -> AlignedVec {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// A buffer destined for a long-lived node slot (grad/aux storage).
    /// Always allocates, deliberately bypassing the free list: these
    /// one-time adoptions happen mid-pass, and letting them consume a
    /// scratch buffer some op returns and re-takes every pass would push
    /// one stray allocation into the first replay.
    pub fn take_persistent(&mut self, len: usize) -> AlignedVec {
        self.alloc_bytes += (len * std::mem::size_of::<f32>()) as u64;
        AlignedVec::zeroed(len)
    }

    /// Return a buffer to the free list for later reuse.
    pub fn give(&mut self, buf: AlignedVec) {
        if !buf.is_empty() {
            debug_assert!(
                aligned::is_aligned(&buf),
                "returned buffer violates alignment"
            );
            self.free.entry(buf.len()).or_default().push(buf);
        }
    }

    /// Record `bytes` of heap allocation done on the arena's behalf
    /// (node buffers and op metadata the tape manages directly).
    pub fn note_alloc(&mut self, bytes: usize) {
        self.alloc_bytes += bytes as u64;
    }

    /// Record one buffer served from recycled storage.
    pub fn note_reuse(&mut self) {
        self.reuse_count += 1;
    }

    /// Total bytes heap-allocated through this arena since creation.
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes
    }

    /// Total buffers served from recycled storage since creation.
    pub fn reuse_count(&self) -> u64 {
        self.reuse_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_allocates_then_reuses() {
        let mut a = Arena::new();
        let b1 = a.take(64);
        assert_eq!(b1.len(), 64);
        assert_eq!(a.alloc_bytes(), 256);
        assert_eq!(a.reuse_count(), 0);
        a.give(b1);
        let b2 = a.take(64);
        assert_eq!(b2.len(), 64);
        assert_eq!(a.alloc_bytes(), 256, "second take must not allocate");
        assert_eq!(a.reuse_count(), 1);
    }

    #[test]
    fn all_flavors_hand_out_aligned_buffers() {
        let mut a = Arena::new();
        for len in [1, 7, 24, 100] {
            assert!(aligned::is_aligned(&a.take(len)));
            assert!(aligned::is_aligned(&a.take_zeroed(len)));
            assert!(aligned::is_aligned(&a.take_persistent(len)));
        }
        // Recycled buffers keep the alignment of their allocation.
        let b = a.take(32);
        a.give(b);
        assert!(aligned::is_aligned(&a.take(32)));
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut a = Arena::new();
        let mut b = a.take(8);
        b.fill(7.5);
        a.give(b);
        assert!(a.take_zeroed(8).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn distinct_lengths_use_distinct_classes() {
        let mut a = Arena::new();
        a.give(AlignedVec::filled(4, 1.0));
        let b = a.take(8);
        assert_eq!(b.len(), 8);
        assert_eq!(a.reuse_count(), 0, "length mismatch must not reuse");
        assert_eq!(a.alloc_bytes(), 32);
    }

    #[test]
    fn persistent_take_leaves_free_list_untouched() {
        let mut a = Arena::new();
        a.give(AlignedVec::filled(8, 1.0));
        let p = a.take_persistent(8);
        assert_eq!(p.len(), 8);
        assert_eq!(a.alloc_bytes(), 32, "persistent take always allocates");
        // The free-listed buffer is still there for a transient take.
        let t = a.take(8);
        assert_eq!(t.len(), 8);
        assert_eq!(a.reuse_count(), 1);
        assert_eq!(a.alloc_bytes(), 32);
    }
}
