//! Reverse-mode automatic differentiation over an explicit op tape.
//!
//! A [`Tape`] is rebuilt for every forward pass: leaves are data tensors or
//! snapshots of parameters (tagged with their [`ParamId`]), interior nodes
//! record the op and its operands, and [`Tape::backward`] walks the tape in
//! reverse accumulating gradients. [`Tape::accumulate_param_grads`] then
//! flushes leaf gradients into the shared [`ParamSet`] for the optimizer.
//!
//! Besides the dense ops, the tape has the segment ops graph networks
//! need: [`Tape::gather_rows`] (edge-source lookup) and
//! [`Tape::scatter_mean_rows`] (mean aggregation of messages per target
//! node), both differentiable.

use crate::params::{ParamId, ParamSet};
use crate::segment;
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    Leaf {
        param: Option<ParamId>,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    MatMul(Var, Var),
    /// Add a `[1 × c]` bias row to every row of `a`.
    AddBias(Var, Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    /// Column-wise concatenation.
    ConcatCols(Vec<Var>),
    /// out[i] = a[index[i]] (row gather).
    GatherRows(Var, Box<[u32]>),
    /// out[index[i]] += a[i] (row scatter-add).
    ScatterSumRows {
        src: Var,
        index: Box<[u32]>,
    },
    /// Like scatter-sum but divides each output row by its in-degree
    /// (rows with no contributions stay zero).
    ScatterMeanRows {
        src: Var,
        index: Box<[u32]>,
        out_rows: usize,
    },
    /// Scalar mean softmax cross-entropy against integer class targets.
    /// `aux` caches the softmax probabilities.
    SoftmaxCrossEntropy {
        logits: Var,
        targets: Box<[u32]>,
    },
    /// Scalar mean squared error against a constant target tensor (stored
    /// in `aux`).
    MseLoss(Var),
    /// Multiply by a cached 0/1-scaled mask (inverted dropout); the mask
    /// lives in `aux`.
    Dropout(Var),
    /// `out[i][j] = a[i][j] * s[i][0]` — scale each row of `a` by the
    /// matching entry of the column vector `s` (attention weights).
    MulRowScale(Var, Var),
    /// `out[i][j] = a[i][j] / s[i][0]` — per-row division (attention
    /// normalization).
    DivRowScale(Var, Var),
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
    aux: Option<Tensor>,
}

/// The autograd tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Tape {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.push_aux(op, value, None)
    }

    fn push_aux(&mut self, op: Op, value: Tensor, aux: Option<Tensor>) -> Var {
        let id = self.nodes.len();
        self.nodes.push(Node {
            op,
            value,
            grad: None,
            aux,
        });
        Var(id)
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a node after [`Tape::backward`] (zeros if it never
    /// received one).
    pub fn grad(&self, v: Var) -> Tensor {
        let n = &self.nodes[v.0];
        n.grad
            .clone()
            .unwrap_or_else(|| Tensor::zeros(n.value.rows(), n.value.cols()))
    }

    // ---- graph construction ------------------------------------------------

    /// A constant/input leaf.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf { param: None }, value)
    }

    /// A parameter leaf: snapshots the current parameter value and tags
    /// the node so [`Tape::accumulate_param_grads`] can route its gradient.
    pub fn param(&mut self, ps: &ParamSet, id: ParamId) -> Var {
        self.push(Op::Leaf { param: Some(id) }, ps.value(id).clone())
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.value(a).map(|x| x * alpha);
        self.push(Op::Scale(a, alpha), v)
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// `a + bias` where `bias` is `[1 × cols]`, broadcast over rows.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (r, c) = self.value(a).shape();
        assert_eq!(self.value(bias).shape(), (1, c), "bias must be [1 x cols]");
        let mut v = self.value(a).clone();
        let brow = self.nodes[bias.0].value.row_slice(0).to_vec();
        for i in 0..r {
            for (x, b) in v.row_slice_mut(i).iter_mut().zip(&brow) {
                *x += *b;
            }
        }
        self.push(Op::AddBias(a, bias), v)
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Concatenate along columns (all inputs must have equal row counts).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of nothing");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut v = Tensor::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                let dst = &mut v.row_slice_mut(r)[off..off + t.cols()];
                dst.copy_from_slice(t.row_slice(r));
            }
            off += t.cols();
        }
        self.push(Op::ConcatCols(parts.to_vec()), v)
    }

    /// Row gather: `out[i] = a[index[i]]`.
    pub fn gather_rows(&mut self, a: Var, index: &[u32]) -> Var {
        let t = self.value(a);
        let cols = t.cols();
        let mut v = Tensor::zeros(index.len(), cols);
        segment::gather_rows_into(v.data_mut(), t.data(), cols, index);
        self.push(Op::GatherRows(a, index.into()), v)
    }

    /// Row scatter-add: `out[index[i]] += a[i]`, output has `out_rows` rows.
    pub fn scatter_sum_rows(&mut self, src: Var, index: &[u32], out_rows: usize) -> Var {
        let t = self.value(src);
        assert_eq!(t.rows(), index.len(), "scatter index length mismatch");
        let cols = t.cols();
        let mut v = Tensor::zeros(out_rows, cols);
        segment::scatter_rows_into(v.data_mut(), out_rows, t.data(), cols, index, false);
        self.push(
            Op::ScatterSumRows {
                src,
                index: index.into(),
            },
            v,
        )
    }

    /// Row scatter-mean: like scatter-add but each output row is divided by
    /// the number of contributions it received (untouched rows stay zero).
    pub fn scatter_mean_rows(&mut self, src: Var, index: &[u32], out_rows: usize) -> Var {
        let t = self.value(src);
        assert_eq!(t.rows(), index.len(), "scatter index length mismatch");
        let cols = t.cols();
        let mut v = Tensor::zeros(out_rows, cols);
        segment::scatter_rows_into(v.data_mut(), out_rows, t.data(), cols, index, true);
        self.push(
            Op::ScatterMeanRows {
                src,
                index: index.into(),
                out_rows,
            },
            v,
        )
    }

    /// Mean softmax cross-entropy of `logits` `[n × k]` against integer
    /// targets `[n]`; returns a `[1 × 1]` loss.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &[u32]) -> Var {
        let t = self.value(logits);
        let (n, k) = t.shape();
        assert_eq!(n, targets.len(), "target length mismatch");
        let mut probs = Tensor::zeros(n, k);
        let mut loss = 0.0f64;
        #[allow(clippy::needless_range_loop)] // row-major softmax is clearest indexed
        for i in 0..n {
            let row = t.row_slice(i);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (j, &x) in row.iter().enumerate() {
                let e = (x - max).exp();
                probs.set(i, j, e);
                denom += e;
            }
            for j in 0..k {
                let p = probs.get(i, j) / denom;
                probs.set(i, j, p);
            }
            let target = targets[i] as usize;
            assert!(target < k, "target class {target} out of range");
            loss -= (probs.get(i, target).max(1e-12) as f64).ln();
        }
        let v = Tensor::from_vec(1, 1, vec![(loss / n as f64) as f32]);
        self.push_aux(
            Op::SoftmaxCrossEntropy {
                logits,
                targets: targets.into(),
            },
            v,
            Some(probs),
        )
    }

    /// Mean squared error of `pred` against a constant `target` tensor;
    /// returns a `[1 × 1]` loss.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "mse shape mismatch");
        let n = p.len() as f32;
        let loss: f32 = p
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            / n;
        let v = Tensor::from_vec(1, 1, vec![loss]);
        self.push_aux(Op::MseLoss(pred), v, Some(target.clone()))
    }

    /// Row-wise scaling: `out[i][·] = a[i][·] * s[i][0]` for a column
    /// vector `s` of shape `[rows × 1]`.
    pub fn mul_row_scale(&mut self, a: Var, s: Var) -> Var {
        let (r, c) = self.value(a).shape();
        assert_eq!(self.value(s).shape(), (r, 1), "scale must be [rows x 1]");
        let mut v = self.value(a).clone();
        for i in 0..r {
            let f = self.nodes[s.0].value.get(i, 0);
            for x in v.row_slice_mut(i) {
                *x *= f;
            }
        }
        let _ = c;
        self.push(Op::MulRowScale(a, s), v)
    }

    /// Row-wise division: `out[i][·] = a[i][·] / s[i][0]`. The caller is
    /// responsible for keeping `s` away from zero (add an epsilon).
    pub fn div_row_scale(&mut self, a: Var, s: Var) -> Var {
        let (r, _c) = self.value(a).shape();
        assert_eq!(self.value(s).shape(), (r, 1), "scale must be [rows x 1]");
        let mut v = self.value(a).clone();
        for i in 0..r {
            let f = self.nodes[s.0].value.get(i, 0);
            for x in v.row_slice_mut(i) {
                *x /= f;
            }
        }
        self.push(Op::DivRowScale(a, s), v)
    }

    /// `x + c` for a scalar constant (no gradient to the constant).
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::Scale(a, 1.0), v)
    }

    /// Inverted dropout with an explicit pre-sampled mask whose entries are
    /// `0.0` (dropped) or `1/(1-p)` (kept). Pass-through when training is
    /// off by simply not calling this.
    pub fn dropout(&mut self, a: Var, mask: Tensor) -> Var {
        assert_eq!(self.value(a).shape(), mask.shape(), "dropout mask shape");
        let v = self.value(a).zip(&mask, |x, m| x * m);
        self.push_aux(Op::Dropout(a), v, Some(mask))
    }

    // ---- backward ------------------------------------------------------------

    fn add_grad(grad: &mut Option<Tensor>, delta: Tensor) {
        match grad {
            Some(g) => g.add_assign(&delta),
            None => *grad = Some(delta),
        }
    }

    /// Run reverse-mode differentiation from a scalar `root`.
    pub fn backward(&mut self, root: Var) {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward root must be a scalar"
        );
        self.nodes[root.0].grad = Some(Tensor::from_vec(1, 1, vec![1.0]));
        for i in (0..=root.0).rev() {
            let Some(gout) = self.nodes[i].grad.clone() else {
                continue;
            };
            // Split borrows: read values via raw indices, write grads after.
            match &self.nodes[i].op {
                Op::Leaf { .. } => {}
                &Op::Add(a, b) => {
                    Self::add_grad(&mut self.nodes[a.0].grad, gout.clone());
                    Self::add_grad(&mut self.nodes[b.0].grad, gout);
                }
                &Op::Sub(a, b) => {
                    Self::add_grad(&mut self.nodes[a.0].grad, gout.clone());
                    Self::add_grad(&mut self.nodes[b.0].grad, gout.map(|x| -x));
                }
                &Op::Mul(a, b) => {
                    let ga = gout.zip(&self.nodes[b.0].value, |g, y| g * y);
                    let gb = gout.zip(&self.nodes[a.0].value, |g, x| g * x);
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                    Self::add_grad(&mut self.nodes[b.0].grad, gb);
                }
                &Op::Scale(a, alpha) => {
                    Self::add_grad(&mut self.nodes[a.0].grad, gout.map(|x| x * alpha));
                }
                &Op::MatMul(a, b) => {
                    // dA = G Bᵀ ; dB = Aᵀ G
                    let ga = gout.matmul_t(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.t_matmul(&gout);
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                    Self::add_grad(&mut self.nodes[b.0].grad, gb);
                }
                &Op::AddBias(a, bias) => {
                    let cols = gout.cols();
                    let mut gb = Tensor::zeros(1, cols);
                    for r in 0..gout.rows() {
                        for (o, &g) in gb.row_slice_mut(0).iter_mut().zip(gout.row_slice(r)) {
                            *o += g;
                        }
                    }
                    Self::add_grad(&mut self.nodes[a.0].grad, gout);
                    Self::add_grad(&mut self.nodes[bias.0].grad, gb);
                }
                &Op::Sigmoid(a) => {
                    let ga = gout.zip(&self.nodes[i].value, |g, y| g * y * (1.0 - y));
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                }
                &Op::Tanh(a) => {
                    let ga = gout.zip(&self.nodes[i].value, |g, y| g * (1.0 - y * y));
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                }
                &Op::Relu(a) => {
                    let ga = gout.zip(&self.nodes[i].value, |g, y| if y > 0.0 { g } else { 0.0 });
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    let mut off = 0;
                    for p in parts {
                        let (r, c) = self.nodes[p.0].value.shape();
                        let mut gp = Tensor::zeros(r, c);
                        for row in 0..r {
                            gp.row_slice_mut(row)
                                .copy_from_slice(&gout.row_slice(row)[off..off + c]);
                        }
                        off += c;
                        Self::add_grad(&mut self.nodes[p.0].grad, gp);
                    }
                }
                Op::GatherRows(a, index) => {
                    let a = *a;
                    let index = index.clone();
                    let (r, c) = self.nodes[a.0].value.shape();
                    // Gather backward is a scatter-add of the output grads.
                    let mut ga = Tensor::zeros(r, c);
                    segment::scatter_rows_into(ga.data_mut(), r, gout.data(), c, &index, false);
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                }
                Op::ScatterSumRows { src, index } => {
                    let src = *src;
                    let index = index.clone();
                    let c = gout.cols();
                    // Scatter-sum backward is a gather of the output grads.
                    let mut gs = Tensor::zeros(index.len(), c);
                    segment::gather_rows_into(gs.data_mut(), gout.data(), c, &index);
                    Self::add_grad(&mut self.nodes[src.0].grad, gs);
                }
                Op::ScatterMeanRows {
                    src,
                    index,
                    out_rows,
                } => {
                    let src = *src;
                    let out_rows = *out_rows;
                    let index = index.clone();
                    let counts = segment::row_counts(&index, out_rows);
                    let inv: Vec<f32> = counts.iter().map(|&n| 1.0 / n.max(1) as f32).collect();
                    let c = gout.cols();
                    let mut gs = Tensor::zeros(index.len(), c);
                    segment::gather_rows_scaled_into(gs.data_mut(), gout.data(), c, &index, &inv);
                    Self::add_grad(&mut self.nodes[src.0].grad, gs);
                }
                Op::SoftmaxCrossEntropy { logits, targets } => {
                    let logits = *logits;
                    let targets = targets.clone();
                    let probs = self.nodes[i].aux.as_ref().expect("softmax cache").clone();
                    let (n, k) = probs.shape();
                    let scale = gout.get(0, 0) / n as f32;
                    let mut gl = Tensor::zeros(n, k);
                    for (r, &target) in targets.iter().enumerate().take(n) {
                        let t = target as usize;
                        for j in 0..k {
                            let indicator = if j == t { 1.0 } else { 0.0 };
                            gl.set(r, j, (probs.get(r, j) - indicator) * scale);
                        }
                    }
                    Self::add_grad(&mut self.nodes[logits.0].grad, gl);
                }
                &Op::MseLoss(pred) => {
                    let target = self.nodes[i].aux.as_ref().expect("mse target").clone();
                    let p = &self.nodes[pred.0].value;
                    let n = p.len() as f32;
                    let scale = 2.0 * gout.get(0, 0) / n;
                    let gp = p.zip(&target, |a, b| (a - b) * scale);
                    Self::add_grad(&mut self.nodes[pred.0].grad, gp);
                }
                &Op::Dropout(a) => {
                    let mask = self.nodes[i].aux.as_ref().expect("dropout mask").clone();
                    let ga = gout.zip(&mask, |g, m| g * m);
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                }
                &Op::MulRowScale(a, s) => {
                    let (r, c) = gout.shape();
                    let sval = self.nodes[s.0].value.clone();
                    let aval = self.nodes[a.0].value.clone();
                    let mut ga = gout.clone();
                    let mut gs = Tensor::zeros(r, 1);
                    for row in 0..r {
                        let f = sval.get(row, 0);
                        let mut acc = 0.0;
                        for col in 0..c {
                            acc += gout.get(row, col) * aval.get(row, col);
                        }
                        gs.set(row, 0, acc);
                        for x in ga.row_slice_mut(row) {
                            *x *= f;
                        }
                    }
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                    Self::add_grad(&mut self.nodes[s.0].grad, gs);
                }
                &Op::DivRowScale(a, s) => {
                    let (r, c) = gout.shape();
                    let sval = self.nodes[s.0].value.clone();
                    let aval = self.nodes[a.0].value.clone();
                    let mut ga = gout.clone();
                    let mut gs = Tensor::zeros(r, 1);
                    for row in 0..r {
                        let f = sval.get(row, 0);
                        let mut acc = 0.0;
                        for col in 0..c {
                            acc += gout.get(row, col) * aval.get(row, col);
                        }
                        gs.set(row, 0, -acc / (f * f));
                        for x in ga.row_slice_mut(row) {
                            *x /= f;
                        }
                    }
                    Self::add_grad(&mut self.nodes[a.0].grad, ga);
                    Self::add_grad(&mut self.nodes[s.0].grad, gs);
                }
            }
        }
    }

    /// Flush gradients of parameter leaves into the parameter set
    /// (accumulating, so multiple tapes per step compose).
    pub fn accumulate_param_grads(&self, ps: &mut ParamSet) {
        for node in &self.nodes {
            if let Op::Leaf { param: Some(id) } = node.op {
                if let Some(g) = &node.grad {
                    ps.grad_mut(id).add_assign(g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check: for scalar-output graphs built by `build`,
    /// compare analytic input gradient against central differences.
    fn check_grad(input: Tensor, build: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x);

        let eps = 1e-3;
        for idx in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let lp = build(&mut tp, xp);
            let fplus = tp.value(lp).get(0, 0);

            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let lm = build(&mut tm, xm);
            let fminus = tm.value(lm).get(0, 0);

            let numeric = (fplus - fminus) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "index {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn seeded(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn grad_of_matmul_chain() {
        let w = seeded(4, 3, 7);
        check_grad(
            seeded(2, 4, 1),
            move |t, x| {
                let wv = t.leaf(w.clone());
                let h = t.matmul(x, wv);
                let s = t.sigmoid(h);
                t.mse_loss(s, &Tensor::full(2, 3, 0.3))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_elementwise_ops() {
        let b = seeded(3, 3, 9);
        check_grad(
            seeded(3, 3, 2),
            move |t, x| {
                let bv = t.leaf(b.clone());
                let m = t.mul(x, bv);
                let s = t.sub(m, x);
                let a = t.add(s, x);
                let h = t.tanh(a);
                t.mse_loss(h, &Tensor::zeros(3, 3))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_relu_and_scale() {
        check_grad(
            seeded(2, 5, 3),
            |t, x| {
                let r = t.relu(x);
                let s = t.scale(r, 1.5);
                t.mse_loss(s, &Tensor::full(2, 5, 0.1))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_bias_and_concat() {
        let bias = seeded(1, 3, 11);
        check_grad(
            seeded(4, 3, 4),
            move |t, x| {
                let bv = t.leaf(bias.clone());
                let h = t.add_bias(x, bv);
                let c = t.concat_cols(&[h, x]);
                t.mse_loss(c, &Tensor::full(4, 6, 0.05))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_gather_scatter() {
        let index = vec![0u32, 2, 1, 2, 0];
        let scatter_to = vec![1u32, 0, 1, 2, 2];
        check_grad(
            seeded(3, 4, 5),
            move |t, x| {
                let g = t.gather_rows(x, &index);
                let s = t.scatter_mean_rows(g, &scatter_to, 3);
                t.mse_loss(s, &Tensor::full(3, 4, 0.2))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_scatter_sum() {
        let scatter_to = vec![1u32, 1, 0];
        check_grad(
            seeded(3, 2, 6),
            move |t, x| {
                let s = t.scatter_sum_rows(x, &scatter_to, 2);
                t.mse_loss(s, &Tensor::full(2, 2, 0.0))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_softmax_cross_entropy() {
        let targets = vec![0u32, 2, 1];
        check_grad(
            seeded(3, 3, 8),
            move |t, x| t.softmax_cross_entropy(x, &targets),
            2e-2,
        );
    }

    #[test]
    fn softmax_ce_value_matches_manual() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        let loss = t.softmax_cross_entropy(logits, &[0]);
        // Uniform over two classes: loss = ln 2.
        assert!((t.value(loss).get(0, 0) - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn dropout_scales_and_masks() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::row(vec![1.0, 2.0, 3.0, 4.0]));
        let mask = Tensor::row(vec![2.0, 0.0, 2.0, 0.0]); // p = 0.5 inverted
        let d = t.dropout(x, mask);
        assert_eq!(t.value(d).data(), &[2.0, 0.0, 6.0, 0.0]);
        let loss = t.mse_loss(d, &Tensor::row(vec![0.0; 4]));
        t.backward(loss);
        let g = t.grad(x);
        assert_eq!(g.data()[1], 0.0);
        assert_eq!(g.data()[3], 0.0);
        assert!(g.data()[0] != 0.0);
    }

    #[test]
    fn param_grads_accumulate_into_set() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::full(2, 2, 0.5));
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let wv = t.param(&ps, w);
        let h = t.matmul(x, wv);
        let loss = t.mse_loss(h, &Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        t.backward(loss);
        t.accumulate_param_grads(&mut ps);
        assert!(ps.grad(w).norm() > 0.0);
        // Second tape accumulates (not overwrites).
        let before = ps.grad(w).clone();
        let mut t2 = Tape::new();
        let x2 = t2.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let wv2 = t2.param(&ps, w);
        let h2 = t2.matmul(x2, wv2);
        let loss2 = t2.mse_loss(h2, &Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        t2.backward(loss2);
        t2.accumulate_param_grads(&mut ps);
        assert!((ps.grad(w).norm() - 2.0 * before.norm()).abs() < 1e-5);
    }

    #[test]
    fn scatter_mean_averages() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec(3, 1, vec![1.0, 3.0, 10.0]));
        let s = t.scatter_mean_rows(x, &[0, 0, 1], 3);
        assert_eq!(t.value(s).data(), &[2.0, 10.0, 0.0]);
    }

    #[test]
    fn grad_of_row_scale_ops() {
        let scale_src = seeded(4, 1, 21).map(|x| x.abs() + 0.5);
        check_grad(
            seeded(4, 3, 20),
            move |t, x| {
                let s = t.leaf(scale_src.clone());
                let m = t.mul_row_scale(x, s);
                let d = t.div_row_scale(m, s);
                let m2 = t.mul_row_scale(d, s);
                t.mse_loss(m2, &Tensor::full(4, 3, 0.1))
            },
            3e-2,
        );
    }

    #[test]
    fn grad_flows_into_row_scale_vector() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let s = t.leaf(Tensor::from_vec(2, 1, vec![2.0, 0.5]));
        let m = t.mul_row_scale(a, s);
        assert_eq!(t.value(m).data(), &[2.0, 4.0, 1.5, 2.0]);
        let loss = t.mse_loss(m, &Tensor::zeros(2, 2));
        t.backward(loss);
        assert!(t.grad(s).norm() > 0.0);
        assert!(t.grad(a).norm() > 0.0);
    }

    #[test]
    fn div_row_scale_inverts_mul() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let s = t.leaf(Tensor::from_vec(2, 1, vec![4.0, 0.25]));
        let m = t.mul_row_scale(a, s);
        let d = t.div_row_scale(m, s);
        for (x, y) in t.value(d).data().iter().zip(t.value(a).data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn add_scalar_shifts_values_with_identity_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::row(vec![1.0, 2.0]));
        let b = t.add_scalar(a, 1e-3);
        assert!((t.value(b).get(0, 0) - 1.001).abs() < 1e-6);
        let loss = t.mse_loss(b, &Tensor::row(vec![0.0, 0.0]));
        t.backward(loss);
        assert!(t.grad(a).norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "backward root must be a scalar")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros(2, 2));
        t.backward(x);
    }
}
