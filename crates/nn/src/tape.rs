//! Reverse-mode automatic differentiation over an explicit op tape,
//! with a reset-and-replay memory plan.
//!
//! A [`Tape`] records leaves (data tensors or parameter snapshots tagged
//! with their [`ParamId`]) and interior nodes (op + operands);
//! [`Tape::backward`] walks the tape in reverse accumulating gradients
//! in place, and [`Tape::accumulate_param_grads`] flushes leaf gradients
//! into the shared [`ParamSet`] for the optimizer.
//!
//! Instead of being rebuilt from scratch every forward pass, a tape can
//! be [`Tape::reset`] and replayed: the node list keeps its buffers, and
//! when the next pass records the same op sequence with the same shapes
//! (the steady state of epoch training over a fixed `PreparedBatch`),
//! every value/grad/aux tensor and every boxed index list is reused —
//! zero heap allocation. Shape or op mismatches fall back to
//! reallocation (counted by the [`crate::arena::Arena`]), so replay is a
//! best-effort optimization, never a correctness requirement. Replay is
//! bitwise-safe because every builder fully overwrites its output
//! buffer (or zero-fills before accumulating) with the exact same
//! kernels and accumulation order as a fresh tape.
//!
//! Besides the dense ops, the tape has the segment ops graph networks
//! need: [`Tape::gather_rows`] (edge-source lookup) and
//! [`Tape::scatter_mean_rows`] (mean aggregation of messages per target
//! node), both differentiable — plus fused linear ops
//! ([`Tape::linear`], [`Tape::linear2`]) that evaluate
//! `act(x·w [+ x2·w2] + bias)` in one pass while keeping gradients and
//! rounding bitwise-identical to the unfused op sequence.

use crate::aligned::AlignedVec;
use crate::arena::Arena;
use crate::ew;
use crate::params::{ParamId, ParamSet};
use crate::segment;
use crate::simd;
use crate::tensor::{self, Tensor};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Activation fused into [`Tape::linear`] / [`Tape::linear2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedAct {
    Identity,
    Relu,
    Sigmoid,
    Tanh,
}

enum Op {
    Leaf {
        param: Option<ParamId>,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    MatMul(Var, Var),
    /// Add a `[1 × c]` bias row to every row of `a`.
    AddBias(Var, Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    /// Column-wise concatenation.
    ConcatCols(Vec<Var>),
    /// out[i] = a[index[i]] (row gather).
    GatherRows(Var, Box<[u32]>),
    /// out[index[i]] += a[i] (row scatter-add).
    ScatterSumRows {
        src: Var,
        index: Box<[u32]>,
    },
    /// Like scatter-sum but divides each output row by its in-degree
    /// (rows with no contributions stay zero). `aux` caches the per-row
    /// 1/count scale so the backward gather never recomputes it.
    ScatterMeanRows {
        src: Var,
        index: Box<[u32]>,
        out_rows: usize,
    },
    /// Scalar mean softmax cross-entropy against integer class targets.
    /// `aux` caches the softmax probabilities.
    SoftmaxCrossEntropy {
        logits: Var,
        targets: Box<[u32]>,
    },
    /// Scalar mean squared error against a constant target tensor (stored
    /// in `aux`).
    MseLoss(Var),
    /// Multiply by a cached 0/1-scaled mask (inverted dropout); the mask
    /// lives in `aux`.
    Dropout(Var),
    /// `out[i][j] = a[i][j] * s[i][0]` — scale each row of `a` by the
    /// matching entry of the column vector `s` (attention weights).
    MulRowScale(Var, Var),
    /// `out[i][j] = a[i][j] / s[i][0]` — per-row division (attention
    /// normalization).
    DivRowScale(Var, Var),
    /// `act((x·w [+ x2·w2]) + bias)` in one pass. Each `+` is its own
    /// rounding step in the forward kernel, and the backward dispatches
    /// in the unfused reverse-tape order (bias, then the x2/w2 pair,
    /// then x/w; input-grad before weight-grad), so both directions are
    /// bit-identical to the separate ops.
    FusedLinear {
        x: Var,
        w: Var,
        x2w2: Option<(Var, Var)>,
        bias: Var,
        act: FusedAct,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    /// Gradient buffer; meaningful only when `has_grad` (stale contents
    /// from a previous pass otherwise — never read, fully overwritten on
    /// the first contribution).
    grad: Tensor,
    has_grad: bool,
    /// Op-specific cache (softmax probs, dropout mask, mse target,
    /// scatter-mean inverse counts); rewritten by each forward pass.
    aux: Tensor,
}

impl Node {
    fn fresh(value: Tensor) -> Node {
        Node {
            op: Op::Leaf { param: None },
            value,
            grad: Tensor::empty(),
            has_grad: false,
            aux: Tensor::empty(),
        }
    }
}

/// The autograd tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Nodes `[0, live)` belong to the current pass; anything beyond is
    /// retained storage from a longer previous pass.
    live: usize,
    /// True when this pass runs over a previously recorded node list.
    replaying: bool,
    arena: Arena,
    /// Per-shape kernel memo: forward matmuls resolve their panel once
    /// per distinct shape, so steady-state replays call cached function
    /// pointers (the `kernel.dispatch_*` metrics count these
    /// resolutions, not kernel invocations).
    dispatch: simd::DispatchTable,
    pass_alloc_start: u64,
    pass_reuse_start: u64,
}

impl Tape {
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Start a new pass, keeping every node buffer for replay. Must be
    /// called between forward passes on a persistent tape.
    pub fn reset(&mut self) {
        self.replaying = !self.nodes.is_empty();
        self.live = 0;
        for n in &mut self.nodes {
            n.has_grad = false;
        }
        self.pass_alloc_start = self.arena.alloc_bytes();
        self.pass_reuse_start = self.arena.reuse_count();
    }

    /// Whether the current pass replays a previously recorded one.
    pub fn replaying(&self) -> bool {
        self.replaying
    }

    /// Total bytes of tape-tensor heap allocation since creation.
    pub fn alloc_bytes(&self) -> u64 {
        self.arena.alloc_bytes()
    }

    /// Total buffer reuses since creation.
    pub fn arena_reuse(&self) -> u64 {
        self.arena.reuse_count()
    }

    /// Bytes allocated during the current pass (since [`Tape::reset`]).
    /// Zero in the steady state.
    pub fn pass_alloc_bytes(&self) -> u64 {
        self.arena.alloc_bytes() - self.pass_alloc_start
    }

    /// Buffer reuses during the current pass (since [`Tape::reset`]).
    pub fn pass_reuse_count(&self) -> u64 {
        self.arena.reuse_count() - self.pass_reuse_start
    }

    /// Number of nodes recorded by the current pass.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a node after [`Tape::backward`], or `None` if it
    /// never received one.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        let n = &self.nodes[v.0];
        if n.has_grad {
            Some(&n.grad)
        } else {
            None
        }
    }

    // ---- node lifecycle ----------------------------------------------------

    /// Claim the next node slot with a `rows × cols` value buffer whose
    /// contents are unspecified (the builder must fully overwrite or
    /// zero-fill it). On replay with a matching shape this is free.
    fn begin(&mut self, rows: usize, cols: usize) -> usize {
        let id = self.live;
        if id < self.nodes.len() {
            let n = &mut self.nodes[id];
            if n.value.shape() == (rows, cols) {
                self.arena.note_reuse();
            } else {
                let grew = n.value.reset_shape(rows, cols);
                if grew > 0 {
                    self.arena.note_alloc(grew);
                } else {
                    self.arena.note_reuse();
                }
            }
        } else {
            self.nodes.push(Node::fresh(Tensor::zeros(rows, cols)));
            self.arena
                .note_alloc(rows * cols * std::mem::size_of::<f32>());
        }
        id
    }

    fn seal(&mut self, id: usize) -> Var {
        self.live = id + 1;
        Var(id)
    }

    fn finish(&mut self, id: usize, op: Op) -> Var {
        self.nodes[id].op = op;
        self.seal(id)
    }

    /// Make `nodes[id].aux` a `rows × cols` buffer (unspecified
    /// contents), recycling through the arena on shape change.
    fn ensure_aux(&mut self, id: usize, rows: usize, cols: usize) {
        let Tape { nodes, arena, .. } = self;
        let n = &mut nodes[id];
        if n.aux.shape() != (rows, cols) {
            arena.give(n.aux.take_data());
            let buf = arena.take_persistent(rows * cols);
            n.aux.adopt(rows, cols, buf);
        }
    }

    // ---- graph construction ------------------------------------------------

    /// A constant/input leaf (takes ownership; on replay the stored
    /// buffer is reused and `value`'s buffer is dropped — prefer
    /// [`Tape::leaf_ref`] on hot paths to avoid the caller-side
    /// allocation entirely).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        let id = self.live;
        if id < self.nodes.len() && self.nodes[id].value.shape() == value.shape() {
            self.nodes[id].value.copy_from(&value);
            self.arena.note_reuse();
        } else {
            self.arena
                .note_alloc(value.len() * std::mem::size_of::<f32>());
            if id < self.nodes.len() {
                self.nodes[id].value = value;
            } else {
                self.nodes.push(Node::fresh(value));
            }
        }
        self.finish(id, Op::Leaf { param: None })
    }

    /// A constant/input leaf copied from a borrowed tensor — the
    /// zero-allocation path on replay.
    pub fn leaf_ref(&mut self, value: &Tensor) -> Var {
        let id = self.live;
        if id < self.nodes.len() && self.nodes[id].value.shape() == value.shape() {
            self.nodes[id].value.copy_from(value);
            self.arena.note_reuse();
        } else {
            self.arena
                .note_alloc(value.len() * std::mem::size_of::<f32>());
            let t = value.clone();
            if id < self.nodes.len() {
                self.nodes[id].value = t;
            } else {
                self.nodes.push(Node::fresh(t));
            }
        }
        self.finish(id, Op::Leaf { param: None })
    }

    /// A constant/input leaf copied from a contiguous row range
    /// `[lo, hi)` of a borrowed tensor — lets micro-batches feed
    /// per-sample tables (aux features, targets) without materializing
    /// the slice, with the same zero-allocation replay as
    /// [`Tape::leaf_ref`].
    pub fn leaf_rows(&mut self, value: &Tensor, lo: usize, hi: usize) -> Var {
        assert!(lo <= hi && hi <= value.rows(), "leaf_rows out of range");
        let cols = value.cols();
        let id = self.begin(hi - lo, cols);
        self.nodes[id]
            .value
            .data_mut()
            .copy_from_slice(&value.data()[lo * cols..hi * cols]);
        self.finish(id, Op::Leaf { param: None })
    }

    /// An all-zeros leaf (recycles its buffer on replay).
    pub fn leaf_zeros(&mut self, rows: usize, cols: usize) -> Var {
        let id = self.begin(rows, cols);
        self.nodes[id].value.data_mut().fill(0.0);
        self.finish(id, Op::Leaf { param: None })
    }

    /// A parameter leaf: snapshots the current parameter value and tags
    /// the node so [`Tape::accumulate_param_grads`] can route its gradient.
    pub fn param(&mut self, ps: &ParamSet, id: ParamId) -> Var {
        let value = ps.value(id);
        let slot = self.live;
        if slot < self.nodes.len() && self.nodes[slot].value.shape() == value.shape() {
            self.nodes[slot].value.copy_from(value);
            self.arena.note_reuse();
        } else {
            self.arena
                .note_alloc(value.len() * std::mem::size_of::<f32>());
            let t = value.clone();
            if slot < self.nodes.len() {
                self.nodes[slot].value = t;
            } else {
                self.nodes.push(Node::fresh(t));
            }
        }
        self.finish(slot, Op::Leaf { param: Some(id) })
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let shape = self.value(a).shape();
        assert_eq!(shape, self.value(b).shape(), "zip shape mismatch");
        let id = self.begin(shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        ew::map2_to(
            node.value.data_mut(),
            prev[a.0].value.data(),
            prev[b.0].value.data(),
            |x, y| x + y,
        );
        self.finish(id, Op::Add(a, b))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let shape = self.value(a).shape();
        assert_eq!(shape, self.value(b).shape(), "zip shape mismatch");
        let id = self.begin(shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        ew::map2_to(
            node.value.data_mut(),
            prev[a.0].value.data(),
            prev[b.0].value.data(),
            |x, y| x - y,
        );
        self.finish(id, Op::Sub(a, b))
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let shape = self.value(a).shape();
        assert_eq!(shape, self.value(b).shape(), "zip shape mismatch");
        let id = self.begin(shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        ew::map2_to(
            node.value.data_mut(),
            prev[a.0].value.data(),
            prev[b.0].value.data(),
            |x, y| x * y,
        );
        self.finish(id, Op::Mul(a, b))
    }

    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let shape = self.value(a).shape();
        let id = self.begin(shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        ew::map1_to(node.value.data_mut(), prev[a.0].value.data(), |x| x * alpha);
        self.finish(id, Op::Scale(a, alpha))
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, k) = self.value(a).shape();
        let (k2, n) = self.value(b).shape();
        assert_eq!(k, k2, "matmul inner-dimension mismatch: {m}x{k} × {k2}x{n}");
        let panel = self.dispatch.matmul(m, k, n);
        let id = self.begin(m, n);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        let out = node.value.data_mut();
        out.fill(0.0);
        tensor::matmul_into_with(
            panel,
            out,
            prev[a.0].value.data(),
            m,
            k,
            prev[b.0].value.data(),
            n,
        );
        self.finish(id, Op::MatMul(a, b))
    }

    /// `a + bias` where `bias` is `[1 × cols]`, broadcast over rows.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (r, c) = self.value(a).shape();
        assert_eq!(self.value(bias).shape(), (1, c), "bias must be [1 x cols]");
        let id = self.begin(r, c);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        node.value
            .data_mut()
            .copy_from_slice(prev[a.0].value.data());
        ew::bias_act(
            node.value.data_mut(),
            prev[bias.0].value.row_slice(0),
            |z| z,
        );
        self.finish(id, Op::AddBias(a, bias))
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let shape = self.value(a).shape();
        let id = self.begin(shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        ew::map1_to(node.value.data_mut(), prev[a.0].value.data(), |x| {
            1.0 / (1.0 + (-x).exp())
        });
        self.finish(id, Op::Sigmoid(a))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let shape = self.value(a).shape();
        let id = self.begin(shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        ew::map1_to(node.value.data_mut(), prev[a.0].value.data(), f32::tanh);
        self.finish(id, Op::Tanh(a))
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let shape = self.value(a).shape();
        let id = self.begin(shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        ew::map1_to(node.value.data_mut(), prev[a.0].value.data(), |x| {
            x.max(0.0)
        });
        self.finish(id, Op::Relu(a))
    }

    /// Concatenate along columns (all inputs must have equal row counts).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of nothing");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let id = self.begin(rows, total);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        let mut off = 0;
        for &p in parts {
            let t = &prev[p.0].value;
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            let c = t.cols();
            for r in 0..rows {
                node.value.row_slice_mut(r)[off..off + c].copy_from_slice(t.row_slice(r));
            }
            off += c;
        }
        let keep = matches!(&self.nodes[id].op, Op::ConcatCols(pv) if pv.as_slice() == parts);
        if !keep {
            self.arena.note_alloc(std::mem::size_of_val(parts));
            self.nodes[id].op = Op::ConcatCols(parts.to_vec());
        }
        self.seal(id)
    }

    /// Row gather: `out[i] = a[index[i]]`.
    pub fn gather_rows(&mut self, a: Var, index: &[u32]) -> Var {
        let cols = self.value(a).cols();
        let id = self.begin(index.len(), cols);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        segment::gather_rows_into(node.value.data_mut(), prev[a.0].value.data(), cols, index);
        let keep = matches!(&self.nodes[id].op,
            Op::GatherRows(pa, pidx) if *pa == a && pidx.as_ref() == index);
        if !keep {
            self.arena.note_alloc(std::mem::size_of_val(index));
            self.nodes[id].op = Op::GatherRows(a, index.into());
        }
        self.seal(id)
    }

    /// Row scatter-add: `out[index[i]] += a[i]`, output has `out_rows` rows.
    pub fn scatter_sum_rows(&mut self, src: Var, index: &[u32], out_rows: usize) -> Var {
        let t = self.value(src);
        assert_eq!(t.rows(), index.len(), "scatter index length mismatch");
        let cols = t.cols();
        let id = self.begin(out_rows, cols);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        let out = node.value.data_mut();
        out.fill(0.0);
        segment::scatter_rows_into(out, out_rows, prev[src.0].value.data(), cols, index, false);
        let keep = matches!(&self.nodes[id].op,
            Op::ScatterSumRows { src: ps, index: pidx } if *ps == src && pidx.as_ref() == index);
        if !keep {
            self.arena.note_alloc(std::mem::size_of_val(index));
            self.nodes[id].op = Op::ScatterSumRows {
                src,
                index: index.into(),
            };
        }
        self.seal(id)
    }

    /// Row scatter-mean: like scatter-add but each output row is divided by
    /// the number of contributions it received (untouched rows stay zero).
    pub fn scatter_mean_rows(&mut self, src: Var, index: &[u32], out_rows: usize) -> Var {
        let t = self.value(src);
        assert_eq!(t.rows(), index.len(), "scatter index length mismatch");
        let cols = t.cols();
        let id = self.begin(out_rows, cols);
        self.ensure_aux(id, 1, out_rows);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        let out = node.value.data_mut();
        out.fill(0.0);
        segment::scatter_rows_into(out, out_rows, prev[src.0].value.data(), cols, index, true);
        // Cache the backward's per-row 1/count scale (counts are small
        // integers, exact in f32, so counting in the f32 buffer is
        // bit-identical to the u32 path).
        let inv = node.aux.data_mut();
        inv.fill(0.0);
        for &d in index {
            inv[d as usize] += 1.0;
        }
        for x in inv.iter_mut() {
            *x = 1.0 / x.max(1.0);
        }
        let keep = matches!(&self.nodes[id].op,
            Op::ScatterMeanRows { src: ps, index: pidx, out_rows: pr }
                if *ps == src && pidx.as_ref() == index && *pr == out_rows);
        if !keep {
            self.arena.note_alloc(std::mem::size_of_val(index));
            self.nodes[id].op = Op::ScatterMeanRows {
                src,
                index: index.into(),
                out_rows,
            };
        }
        self.seal(id)
    }

    /// Mean softmax cross-entropy of `logits` `[n × k]` against integer
    /// targets `[n]`; returns a `[1 × 1]` loss.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &[u32]) -> Var {
        let (n, k) = self.value(logits).shape();
        assert_eq!(n, targets.len(), "target length mismatch");
        let id = self.begin(1, 1);
        self.ensure_aux(id, n, k);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        let t = &prev[logits.0].value;
        let probs = &mut node.aux;
        let mut loss = 0.0f64;
        #[allow(clippy::needless_range_loop)] // row-major softmax is clearest indexed
        for i in 0..n {
            let row = t.row_slice(i);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (j, &x) in row.iter().enumerate() {
                let e = (x - max).exp();
                probs.set(i, j, e);
                denom += e;
            }
            for j in 0..k {
                let p = probs.get(i, j) / denom;
                probs.set(i, j, p);
            }
            let target = targets[i] as usize;
            assert!(target < k, "target class {target} out of range");
            loss -= (probs.get(i, target).max(1e-12) as f64).ln();
        }
        node.value.data_mut()[0] = (loss / n as f64) as f32;
        let keep = matches!(&self.nodes[id].op,
            Op::SoftmaxCrossEntropy { logits: pl, targets: pt }
                if *pl == logits && pt.as_ref() == targets);
        if !keep {
            self.arena.note_alloc(std::mem::size_of_val(targets));
            self.nodes[id].op = Op::SoftmaxCrossEntropy {
                logits,
                targets: targets.into(),
            };
        }
        self.seal(id)
    }

    /// Mean squared error of `pred` against a constant `target` tensor;
    /// returns a `[1 × 1]` loss.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let shape = self.value(pred).shape();
        assert_eq!(shape, target.shape(), "mse shape mismatch");
        let id = self.begin(1, 1);
        self.ensure_aux(id, shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        node.aux.data_mut().copy_from_slice(target.data());
        let p = &prev[pred.0].value;
        let n = p.len() as f32;
        let loss: f32 = p
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            / n;
        node.value.data_mut()[0] = loss;
        self.finish(id, Op::MseLoss(pred))
    }

    /// Row-wise scaling: `out[i][·] = a[i][·] * s[i][0]` for a column
    /// vector `s` of shape `[rows × 1]`.
    pub fn mul_row_scale(&mut self, a: Var, s: Var) -> Var {
        let (r, c) = self.value(a).shape();
        assert_eq!(self.value(s).shape(), (r, 1), "scale must be [rows x 1]");
        let id = self.begin(r, c);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        for i in 0..r {
            let f = prev[s.0].value.get(i, 0);
            let src = prev[a.0].value.row_slice(i);
            for (o, &x) in node.value.row_slice_mut(i).iter_mut().zip(src) {
                *o = x * f;
            }
        }
        self.finish(id, Op::MulRowScale(a, s))
    }

    /// Row-wise division: `out[i][·] = a[i][·] / s[i][0]`. The caller is
    /// responsible for keeping `s` away from zero (add an epsilon).
    pub fn div_row_scale(&mut self, a: Var, s: Var) -> Var {
        let (r, c) = self.value(a).shape();
        assert_eq!(self.value(s).shape(), (r, 1), "scale must be [rows x 1]");
        let id = self.begin(r, c);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        for i in 0..r {
            let f = prev[s.0].value.get(i, 0);
            let src = prev[a.0].value.row_slice(i);
            for (o, &x) in node.value.row_slice_mut(i).iter_mut().zip(src) {
                *o = x / f;
            }
        }
        self.finish(id, Op::DivRowScale(a, s))
    }

    /// `x + c` for a scalar constant (no gradient to the constant).
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let shape = self.value(a).shape();
        let id = self.begin(shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        ew::map1_to(node.value.data_mut(), prev[a.0].value.data(), |x| x + c);
        self.finish(id, Op::Scale(a, 1.0))
    }

    /// Inverted dropout with an explicit pre-sampled mask whose entries are
    /// `0.0` (dropped) or `1/(1-p)` (kept). Pass-through when training is
    /// off by simply not calling this.
    pub fn dropout(&mut self, a: Var, mask: Tensor) -> Var {
        let shape = self.value(a).shape();
        assert_eq!(shape, mask.shape(), "dropout mask shape");
        let id = self.begin(shape.0, shape.1);
        self.ensure_aux(id, shape.0, shape.1);
        let (prev, node) = split_nodes(&mut self.nodes, id);
        node.aux.data_mut().copy_from_slice(mask.data());
        ew::map2_to(
            node.value.data_mut(),
            prev[a.0].value.data(),
            node.aux.data(),
            |x, m| x * m,
        );
        self.finish(id, Op::Dropout(a))
    }

    /// Fused `act(x·w + bias)` — one output buffer, one bias+activation
    /// sweep, bitwise-identical to `matmul` → `add_bias` → activation.
    pub fn linear(&mut self, x: Var, w: Var, bias: Var, act: FusedAct) -> Var {
        self.linear_impl(x, w, None, bias, act)
    }

    /// Fused `act(x·w + x2·w2 + bias)` (the GRU gate shape). The second
    /// product lands in an arena scratch buffer and is added elementwise,
    /// preserving the unfused `add(xw, hu)` rounding.
    pub fn linear2(&mut self, x: Var, w: Var, x2: Var, w2: Var, bias: Var, act: FusedAct) -> Var {
        self.linear_impl(x, w, Some((x2, w2)), bias, act)
    }

    fn linear_impl(
        &mut self,
        x: Var,
        w: Var,
        x2w2: Option<(Var, Var)>,
        bias: Var,
        act: FusedAct,
    ) -> Var {
        let (m, k) = self.value(x).shape();
        let (kw, n) = self.value(w).shape();
        assert_eq!(k, kw, "matmul inner-dimension mismatch: {m}x{k} × {kw}x{n}");
        assert_eq!(self.value(bias).shape(), (1, n), "bias must be [1 x cols]");
        if let Some((x2, w2)) = x2w2 {
            let (m2, k2) = self.value(x2).shape();
            let (kw2, n2) = self.value(w2).shape();
            assert_eq!(
                k2, kw2,
                "matmul inner-dimension mismatch: {m2}x{k2} × {kw2}x{n2}"
            );
            assert_eq!((m2, n2), (m, n), "linear2 operand shape mismatch");
        }
        let panel = self.dispatch.matmul(m, k, n);
        let panel2 = x2w2.map(|(x2, _)| {
            let k2 = self.value(x2).cols();
            (self.dispatch.matmul(m, k2, n), k2)
        });
        let id = self.begin(m, n);
        let mut scratch = if x2w2.is_some() {
            self.arena.take(m * n)
        } else {
            AlignedVec::new()
        };
        let (prev, node) = split_nodes(&mut self.nodes, id);
        let out = node.value.data_mut();
        out.fill(0.0);
        tensor::matmul_into_with(
            panel,
            out,
            prev[x.0].value.data(),
            m,
            k,
            prev[w.0].value.data(),
            n,
        );
        if let Some((x2, w2)) = x2w2 {
            let (panel2, k2) = panel2.expect("panel resolved with operands");
            scratch.fill(0.0);
            tensor::matmul_into_with(
                panel2,
                &mut scratch,
                prev[x2.0].value.data(),
                m,
                k2,
                prev[w2.0].value.data(),
                n,
            );
            for (o, &s) in out.iter_mut().zip(scratch.iter()) {
                *o += s;
            }
        }
        let brow = prev[bias.0].value.row_slice(0);
        match act {
            FusedAct::Identity => ew::bias_act(out, brow, |z| z),
            FusedAct::Relu => ew::bias_act(out, brow, |z| z.max(0.0)),
            FusedAct::Sigmoid => ew::bias_act(out, brow, |z| 1.0 / (1.0 + (-z).exp())),
            FusedAct::Tanh => ew::bias_act(out, brow, f32::tanh),
        }
        if !scratch.is_empty() {
            self.arena.give(scratch);
        }
        self.finish(
            id,
            Op::FusedLinear {
                x,
                w,
                x2w2,
                bias,
                act,
            },
        )
    }

    // ---- backward ----------------------------------------------------------

    /// Run reverse-mode differentiation from a scalar `root`, accumulating
    /// gradients in place (no per-op tensor clones).
    pub fn backward(&mut self, root: Var) {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward root must be a scalar"
        );
        let Tape { nodes, arena, .. } = self;
        prepare_slot(&mut nodes[root.0], arena);
        nodes[root.0].grad.data_mut()[0] = 1.0;
        for i in (0..=root.0).rev() {
            if !nodes[i].has_grad {
                continue;
            }
            let (prev, rest) = nodes.split_at_mut(i);
            let node = &rest[0];
            let g = &node.grad;
            match &node.op {
                Op::Leaf { .. } => {}
                &Op::Add(a, b) => {
                    for v in [a, b] {
                        let (t, was) = target(prev, v, arena);
                        if was {
                            ew::map1_acc(t.data_mut(), g.data(), |x| x);
                        } else {
                            t.data_mut().copy_from_slice(g.data());
                        }
                    }
                }
                &Op::Sub(a, b) => {
                    let (t, was) = target(prev, a, arena);
                    if was {
                        ew::map1_acc(t.data_mut(), g.data(), |x| x);
                    } else {
                        t.data_mut().copy_from_slice(g.data());
                    }
                    let (t, was) = target(prev, b, arena);
                    if was {
                        ew::map1_acc(t.data_mut(), g.data(), |x| -x);
                    } else {
                        ew::map1_to(t.data_mut(), g.data(), |x| -x);
                    }
                }
                &Op::Mul(a, b) => {
                    let (t, was, bv) = target_and_val(prev, a, b, arena);
                    if was {
                        ew::map2_acc(t.data_mut(), g.data(), bv.data(), |gg, y| gg * y);
                    } else {
                        ew::map2_to(t.data_mut(), g.data(), bv.data(), |gg, y| gg * y);
                    }
                    let (t, was, av) = target_and_val(prev, b, a, arena);
                    if was {
                        ew::map2_acc(t.data_mut(), g.data(), av.data(), |gg, x| gg * x);
                    } else {
                        ew::map2_to(t.data_mut(), g.data(), av.data(), |gg, x| gg * x);
                    }
                }
                &Op::Scale(a, alpha) => {
                    let (t, was) = target(prev, a, arena);
                    if was {
                        ew::map1_acc(t.data_mut(), g.data(), |x| x * alpha);
                    } else {
                        ew::map1_to(t.data_mut(), g.data(), |x| x * alpha);
                    }
                }
                &Op::MatMul(a, b) => {
                    // dA = G Bᵀ ; dB = Aᵀ G
                    let (m, n) = g.shape();
                    {
                        let (t, was, bv) = target_and_val(prev, a, b, arena);
                        matmul_grad_a(t, was, g.data(), m, n, bv, arena);
                    }
                    let (t, was, av) = target_and_val(prev, b, a, arena);
                    let (ar, ac) = av.shape();
                    if was {
                        // Multi-term reduction: a fresh zeroed scratch keeps
                        // the rounding of the old materialize-then-add path.
                        let mut s = arena.take_zeroed(ac * n);
                        tensor::t_matmul_into(&mut s, av.data(), ar, ac, g.data(), n);
                        add_from(t, &s);
                        arena.give(s);
                    } else {
                        t.data_mut().fill(0.0);
                        tensor::t_matmul_into(t.data_mut(), av.data(), ar, ac, g.data(), n);
                    }
                }
                &Op::AddBias(a, bias) => {
                    let (t, was) = target(prev, a, arena);
                    if was {
                        ew::map1_acc(t.data_mut(), g.data(), |x| x);
                    } else {
                        t.data_mut().copy_from_slice(g.data());
                    }
                    let cols = g.cols();
                    let (t, was) = target(prev, bias, arena);
                    if was {
                        let mut s = arena.take_zeroed(cols);
                        col_sum(&mut s, g.data(), g.rows(), cols);
                        add_from(t, &s);
                        arena.give(s);
                    } else {
                        t.data_mut().fill(0.0);
                        col_sum(t.data_mut(), g.data(), g.rows(), cols);
                    }
                }
                &Op::Sigmoid(a) => {
                    let y = &node.value;
                    let (t, was) = target(prev, a, arena);
                    if was {
                        ew::map2_acc(t.data_mut(), g.data(), y.data(), |gg, yv| {
                            gg * yv * (1.0 - yv)
                        });
                    } else {
                        ew::map2_to(t.data_mut(), g.data(), y.data(), |gg, yv| {
                            gg * yv * (1.0 - yv)
                        });
                    }
                }
                &Op::Tanh(a) => {
                    let y = &node.value;
                    let (t, was) = target(prev, a, arena);
                    if was {
                        ew::map2_acc(t.data_mut(), g.data(), y.data(), |gg, yv| {
                            gg * (1.0 - yv * yv)
                        });
                    } else {
                        ew::map2_to(t.data_mut(), g.data(), y.data(), |gg, yv| {
                            gg * (1.0 - yv * yv)
                        });
                    }
                }
                &Op::Relu(a) => {
                    let y = &node.value;
                    let (t, was) = target(prev, a, arena);
                    if was {
                        ew::map2_acc(t.data_mut(), g.data(), y.data(), |gg, yv| {
                            if yv > 0.0 {
                                gg
                            } else {
                                0.0
                            }
                        });
                    } else {
                        ew::map2_to(t.data_mut(), g.data(), y.data(), |gg, yv| {
                            if yv > 0.0 {
                                gg
                            } else {
                                0.0
                            }
                        });
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let (t, was) = target(prev, p, arena);
                        let c = t.cols();
                        for row in 0..t.rows() {
                            let src = &g.row_slice(row)[off..off + c];
                            let dst = t.row_slice_mut(row);
                            if was {
                                for (o, &v) in dst.iter_mut().zip(src) {
                                    *o += v;
                                }
                            } else {
                                dst.copy_from_slice(src);
                            }
                        }
                        off += c;
                    }
                }
                Op::GatherRows(a, index) => {
                    // Gather backward is a scatter-add of the output grads.
                    let (t, was) = target(prev, *a, arena);
                    let (r, c) = t.shape();
                    if was {
                        let mut s = arena.take_zeroed(r * c);
                        segment::scatter_rows_into(&mut s, r, g.data(), c, index, false);
                        add_from(t, &s);
                        arena.give(s);
                    } else {
                        t.data_mut().fill(0.0);
                        segment::scatter_rows_into(t.data_mut(), r, g.data(), c, index, false);
                    }
                }
                Op::ScatterSumRows { src, index } => {
                    // Scatter-sum backward is a gather of the output grads.
                    let c = g.cols();
                    let (t, was) = target(prev, *src, arena);
                    if was {
                        segment::gather_rows_acc_into(t.data_mut(), g.data(), c, index);
                    } else {
                        segment::gather_rows_into(t.data_mut(), g.data(), c, index);
                    }
                }
                Op::ScatterMeanRows { src, index, .. } => {
                    let c = g.cols();
                    let inv = node.aux.data();
                    let (t, was) = target(prev, *src, arena);
                    if was {
                        segment::gather_rows_scaled_acc_into(t.data_mut(), g.data(), c, index, inv);
                    } else {
                        segment::gather_rows_scaled_into(t.data_mut(), g.data(), c, index, inv);
                    }
                }
                Op::SoftmaxCrossEntropy { logits, targets } => {
                    let probs = &node.aux;
                    let (n, k) = probs.shape();
                    let scale = g.get(0, 0) / n as f32;
                    let (t, was) = target(prev, *logits, arena);
                    for (r, &target) in targets.iter().enumerate().take(n) {
                        let tc = target as usize;
                        for j in 0..k {
                            let indicator = if j == tc { 1.0 } else { 0.0 };
                            let v = (probs.get(r, j) - indicator) * scale;
                            if was {
                                t.set(r, j, t.get(r, j) + v);
                            } else {
                                t.set(r, j, v);
                            }
                        }
                    }
                }
                &Op::MseLoss(pred) => {
                    let aux = &node.aux;
                    let (t, was, p) = target_and_val(prev, pred, pred, arena);
                    let n = p.len() as f32;
                    let scale = 2.0 * g.get(0, 0) / n;
                    if was {
                        ew::map2_acc(t.data_mut(), p.data(), aux.data(), |a, b| (a - b) * scale);
                    } else {
                        ew::map2_to(t.data_mut(), p.data(), aux.data(), |a, b| (a - b) * scale);
                    }
                }
                &Op::Dropout(a) => {
                    let mask = &node.aux;
                    let (t, was) = target(prev, a, arena);
                    if was {
                        ew::map2_acc(t.data_mut(), g.data(), mask.data(), |gg, m| gg * m);
                    } else {
                        ew::map2_to(t.data_mut(), g.data(), mask.data(), |gg, m| gg * m);
                    }
                }
                &Op::MulRowScale(a, s) => {
                    let (r, c) = g.shape();
                    {
                        let (t, was, sval) = target_and_val(prev, a, s, arena);
                        for row in 0..r {
                            let f = sval.get(row, 0);
                            let dst = t.row_slice_mut(row);
                            for (o, &gv) in dst.iter_mut().zip(g.row_slice(row)) {
                                if was {
                                    *o += gv * f;
                                } else {
                                    *o = gv * f;
                                }
                            }
                        }
                    }
                    let (t, was, aval) = target_and_val(prev, s, a, arena);
                    for row in 0..r {
                        let mut acc = 0.0;
                        for col in 0..c {
                            acc += g.get(row, col) * aval.get(row, col);
                        }
                        if was {
                            t.set(row, 0, t.get(row, 0) + acc);
                        } else {
                            t.set(row, 0, acc);
                        }
                    }
                }
                &Op::DivRowScale(a, s) => {
                    let (r, c) = g.shape();
                    {
                        let (t, was, sval) = target_and_val(prev, a, s, arena);
                        for row in 0..r {
                            let f = sval.get(row, 0);
                            let dst = t.row_slice_mut(row);
                            for (o, &gv) in dst.iter_mut().zip(g.row_slice(row)) {
                                if was {
                                    *o += gv / f;
                                } else {
                                    *o = gv / f;
                                }
                            }
                        }
                    }
                    let (t, was, sval, aval) = target_val_and_other(prev, s, a, arena);
                    for row in 0..r {
                        let f = sval.get(row, 0);
                        let mut acc = 0.0;
                        for col in 0..c {
                            acc += g.get(row, col) * aval.get(row, col);
                        }
                        let v = -acc / (f * f);
                        if was {
                            t.set(row, 0, t.get(row, 0) + v);
                        } else {
                            t.set(row, 0, v);
                        }
                    }
                }
                &Op::FusedLinear {
                    x,
                    w,
                    x2w2,
                    bias,
                    act,
                } => {
                    let y = &node.value;
                    let (m, n) = y.shape();
                    // gz = gout ⊙ act'(y); for Identity, gz IS gout.
                    let gz_buf = match act {
                        FusedAct::Identity => None,
                        FusedAct::Relu => {
                            let mut b = arena.take(m * n);
                            ew::map2_to(&mut b, g.data(), y.data(), |gg, yv| {
                                if yv > 0.0 {
                                    gg
                                } else {
                                    0.0
                                }
                            });
                            Some(b)
                        }
                        FusedAct::Sigmoid => {
                            let mut b = arena.take(m * n);
                            ew::map2_to(&mut b, g.data(), y.data(), |gg, yv| gg * yv * (1.0 - yv));
                            Some(b)
                        }
                        FusedAct::Tanh => {
                            let mut b = arena.take(m * n);
                            ew::map2_to(&mut b, g.data(), y.data(), |gg, yv| gg * (1.0 - yv * yv));
                            Some(b)
                        }
                    };
                    let gz: &[f32] = gz_buf.as_deref().unwrap_or(g.data());
                    // Unfused reverse-tape order: bias, then the second
                    // (later-recorded) product pair, then the first;
                    // input-grad before weight-grad within each pair.
                    {
                        let (t, was) = target(prev, bias, arena);
                        if was {
                            let mut s = arena.take_zeroed(n);
                            col_sum(&mut s, gz, m, n);
                            add_from(t, &s);
                            arena.give(s);
                        } else {
                            t.data_mut().fill(0.0);
                            col_sum(t.data_mut(), gz, m, n);
                        }
                    }
                    for (xi, wi) in x2w2.into_iter().chain(std::iter::once((x, w))) {
                        {
                            let (t, was, wv) = target_and_val(prev, xi, wi, arena);
                            matmul_grad_a(t, was, gz, m, n, wv, arena);
                        }
                        let (t, was, xv) = target_and_val(prev, wi, xi, arena);
                        let (xr, xc) = xv.shape();
                        if was {
                            let mut s = arena.take_zeroed(xc * n);
                            tensor::t_matmul_into(&mut s, xv.data(), xr, xc, gz, n);
                            add_from(t, &s);
                            arena.give(s);
                        } else {
                            t.data_mut().fill(0.0);
                            tensor::t_matmul_into(t.data_mut(), xv.data(), xr, xc, gz, n);
                        }
                    }
                    if let Some(b) = gz_buf {
                        arena.give(b);
                    }
                }
            }
        }
    }

    /// Flush gradients of parameter leaves into the parameter set
    /// (accumulating, so multiple tapes per step compose).
    pub fn accumulate_param_grads(&self, ps: &mut ParamSet) {
        for node in &self.nodes[..self.live] {
            if let Op::Leaf { param: Some(id) } = node.op {
                if node.has_grad {
                    ps.grad_mut(id).add_assign(&node.grad);
                }
            }
        }
    }

    /// Flush gradients of parameter leaves into a per-micro-batch
    /// [`GradShard`] instead of the shared set — the data-parallel
    /// epoch's replica tapes each write their own shard concurrently,
    /// then the shards tree-reduce into the `ParamSet` in a fixed order.
    /// A parameter snapshotted by several leaves on one tape (GRU reuse)
    /// accumulates within the shard exactly as it would in the set.
    pub fn accumulate_param_grads_shard(&self, shard: &mut crate::params::GradShard) {
        for node in &self.nodes[..self.live] {
            if let Op::Leaf { param: Some(id) } = node.op {
                if node.has_grad {
                    shard.accumulate(id, &node.grad);
                }
            }
        }
    }
}

/// Split the node list at `id`: everything before (operand reads and
/// grad writes) and the node being built/differentiated.
fn split_nodes(nodes: &mut [Node], id: usize) -> (&mut [Node], &mut Node) {
    let (prev, rest) = nodes.split_at_mut(id);
    (prev, &mut rest[0])
}

/// Make the node's grad buffer match its value shape (recycling through
/// the arena) and mark it live. Returns whether it already held a
/// gradient this pass (accumulate vs first-write).
fn prepare_slot(n: &mut Node, arena: &mut Arena) -> bool {
    let was = n.has_grad;
    n.has_grad = true;
    let (r, c) = n.value.shape();
    if n.grad.shape() != (r, c) {
        arena.give(n.grad.take_data());
        let buf = arena.take_persistent(r * c);
        n.grad.adopt(r, c, buf);
    }
    was
}

/// Gradient accumulator for `v`.
fn target<'p>(prev: &'p mut [Node], v: Var, arena: &mut Arena) -> (&'p mut Tensor, bool) {
    let n = &mut prev[v.0];
    let was = prepare_slot(n, arena);
    (&mut n.grad, was)
}

/// Gradient accumulator for `t` plus the (shared) value of `s`. Handles
/// `t == s` by splitting fields of the same node.
fn target_and_val<'p>(
    prev: &'p mut [Node],
    t: Var,
    s: Var,
    arena: &mut Arena,
) -> (&'p mut Tensor, bool, &'p Tensor) {
    use std::cmp::Ordering;
    match t.0.cmp(&s.0) {
        Ordering::Equal => {
            let n = &mut prev[t.0];
            let was = prepare_slot(n, arena);
            let Node { value, grad, .. } = n;
            (grad, was, &*value)
        }
        Ordering::Less => {
            let (left, right) = prev.split_at_mut(s.0);
            let n = &mut left[t.0];
            let was = prepare_slot(n, arena);
            (&mut n.grad, was, &right[0].value)
        }
        Ordering::Greater => {
            let (left, right) = prev.split_at_mut(t.0);
            let n = &mut right[0];
            let was = prepare_slot(n, arena);
            (&mut n.grad, was, &left[s.0].value)
        }
    }
}

/// Gradient accumulator for `tv` plus `tv`'s own value and the value of
/// `ov` (the DivRowScale backward needs all three at once).
fn target_val_and_other<'p>(
    prev: &'p mut [Node],
    tv: Var,
    ov: Var,
    arena: &mut Arena,
) -> (&'p mut Tensor, bool, &'p Tensor, &'p Tensor) {
    use std::cmp::Ordering;
    match tv.0.cmp(&ov.0) {
        Ordering::Equal => {
            let n = &mut prev[tv.0];
            let was = prepare_slot(n, arena);
            let Node { value, grad, .. } = n;
            (grad, was, &*value, &*value)
        }
        Ordering::Less => {
            let (left, right) = prev.split_at_mut(ov.0);
            let n = &mut left[tv.0];
            let was = prepare_slot(n, arena);
            let Node { value, grad, .. } = n;
            (grad, was, &*value, &right[0].value)
        }
        Ordering::Greater => {
            let (left, right) = prev.split_at_mut(tv.0);
            let n = &mut right[0];
            let was = prepare_slot(n, arena);
            let Node { value, grad, .. } = n;
            (grad, was, &*value, &left[ov.0].value)
        }
    }
}

/// Input gradient of a product: `t (+)= g (m×n) × bvᵀ`. Computed as a
/// row-major multiply against a transposed copy of `bv` (arena scratch)
/// so the inner loop vectorizes; per-element accumulation order is
/// identical to the dot-product kernel, so the bits match the historical
/// `matmul_t` path exactly.
fn matmul_grad_a(
    t: &mut Tensor,
    was: bool,
    g: &[f32],
    m: usize,
    n: usize,
    bv: &Tensor,
    arena: &mut Arena,
) {
    let (bk, bn) = bv.shape();
    debug_assert_eq!(bn, n);
    let mut bt = arena.take(bk * bn);
    tensor::transpose_into(&mut bt, bv.data(), bk, bn);
    if was {
        // Multi-term reduction: a fresh zeroed scratch keeps the
        // rounding of the old materialize-then-add path.
        let mut s = arena.take_zeroed(m * bk);
        tensor::matmul_dense_into(&mut s, g, m, n, &bt, bk);
        add_from(t, &s);
        arena.give(s);
    } else {
        t.data_mut().fill(0.0);
        tensor::matmul_dense_into(t.data_mut(), g, m, n, &bt, bk);
    }
    arena.give(bt);
}

/// `t += scratch` — same per-element rounding as `Tensor::add_assign`.
fn add_from(t: &mut Tensor, scratch: &[f32]) {
    for (o, &s) in t.data_mut().iter_mut().zip(scratch) {
        *o += s;
    }
}

/// Accumulate each row of `g` (`rows × cols`) into `dst` in row order —
/// the bias gradient's column sum, matching the historical loop.
fn col_sum(dst: &mut [f32], g: &[f32], rows: usize, cols: usize) {
    for r in 0..rows {
        for (o, &gv) in dst.iter_mut().zip(&g[r * cols..(r + 1) * cols]) {
            *o += gv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check: for scalar-output graphs built by `build`,
    /// compare analytic input gradient against central differences.
    fn check_grad(input: Tensor, build: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).expect("input grad").clone();

        let eps = 1e-3;
        for idx in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let lp = build(&mut tp, xp);
            let fplus = tp.value(lp).get(0, 0);

            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let lm = build(&mut tm, xm);
            let fminus = tm.value(lm).get(0, 0);

            let numeric = (fplus - fminus) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "index {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn seeded(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn grad_of_matmul_chain() {
        let w = seeded(4, 3, 7);
        check_grad(
            seeded(2, 4, 1),
            move |t, x| {
                let wv = t.leaf(w.clone());
                let h = t.matmul(x, wv);
                let s = t.sigmoid(h);
                t.mse_loss(s, &Tensor::full(2, 3, 0.3))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_elementwise_ops() {
        let b = seeded(3, 3, 9);
        check_grad(
            seeded(3, 3, 2),
            move |t, x| {
                let bv = t.leaf(b.clone());
                let m = t.mul(x, bv);
                let s = t.sub(m, x);
                let a = t.add(s, x);
                let h = t.tanh(a);
                t.mse_loss(h, &Tensor::zeros(3, 3))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_relu_and_scale() {
        check_grad(
            seeded(2, 5, 3),
            |t, x| {
                let r = t.relu(x);
                let s = t.scale(r, 1.5);
                t.mse_loss(s, &Tensor::full(2, 5, 0.1))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_bias_and_concat() {
        let bias = seeded(1, 3, 11);
        check_grad(
            seeded(4, 3, 4),
            move |t, x| {
                let bv = t.leaf(bias.clone());
                let h = t.add_bias(x, bv);
                let c = t.concat_cols(&[h, x]);
                t.mse_loss(c, &Tensor::full(4, 6, 0.05))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_gather_scatter() {
        let index = vec![0u32, 2, 1, 2, 0];
        let scatter_to = vec![1u32, 0, 1, 2, 2];
        check_grad(
            seeded(3, 4, 5),
            move |t, x| {
                let g = t.gather_rows(x, &index);
                let s = t.scatter_mean_rows(g, &scatter_to, 3);
                t.mse_loss(s, &Tensor::full(3, 4, 0.2))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_scatter_sum() {
        let scatter_to = vec![1u32, 1, 0];
        check_grad(
            seeded(3, 2, 6),
            move |t, x| {
                let s = t.scatter_sum_rows(x, &scatter_to, 2);
                t.mse_loss(s, &Tensor::full(2, 2, 0.0))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_softmax_cross_entropy() {
        let targets = vec![0u32, 2, 1];
        check_grad(
            seeded(3, 3, 8),
            move |t, x| t.softmax_cross_entropy(x, &targets),
            2e-2,
        );
    }

    #[test]
    fn grad_of_fused_linear() {
        let w = seeded(4, 3, 7);
        let b = seeded(1, 3, 17);
        check_grad(
            seeded(2, 4, 1),
            move |t, x| {
                let wv = t.leaf(w.clone());
                let bv = t.leaf(b.clone());
                let h = t.linear(x, wv, bv, FusedAct::Sigmoid);
                t.mse_loss(h, &Tensor::full(2, 3, 0.3))
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_fused_linear2_shared_input() {
        // Both products derive from x, so its grad accumulates through
        // both paths of the fused backward.
        let w1 = seeded(4, 3, 41);
        let w2 = seeded(4, 3, 42);
        let b = seeded(1, 3, 43);
        check_grad(
            seeded(2, 4, 44),
            move |t, x| {
                let w1v = t.leaf(w1.clone());
                let w2v = t.leaf(w2.clone());
                let bv = t.leaf(b.clone());
                let x2 = t.tanh(x);
                let h = t.linear2(x, w1v, x2, w2v, bv, FusedAct::Tanh);
                t.mse_loss(h, &Tensor::full(2, 3, 0.1))
            },
            2e-2,
        );
    }

    #[test]
    fn fused_linear_matches_unfused_bitwise() {
        for act in [
            FusedAct::Identity,
            FusedAct::Relu,
            FusedAct::Sigmoid,
            FusedAct::Tanh,
        ] {
            let x = seeded(5, 4, 31);
            let w = seeded(4, 3, 32);
            let b = seeded(1, 3, 33);
            let target = Tensor::full(5, 3, 0.2);

            let mut t1 = Tape::new();
            let (x1, w1, b1) = (t1.leaf(x.clone()), t1.leaf(w.clone()), t1.leaf(b.clone()));
            let mm = t1.matmul(x1, w1);
            let ab = t1.add_bias(mm, b1);
            let out1 = match act {
                FusedAct::Identity => ab,
                FusedAct::Relu => t1.relu(ab),
                FusedAct::Sigmoid => t1.sigmoid(ab),
                FusedAct::Tanh => t1.tanh(ab),
            };
            let l1 = t1.mse_loss(out1, &target);
            t1.backward(l1);

            let mut t2 = Tape::new();
            let (x2, w2, b2) = (t2.leaf(x.clone()), t2.leaf(w.clone()), t2.leaf(b.clone()));
            let out2 = t2.linear(x2, w2, b2, act);
            let l2 = t2.mse_loss(out2, &target);
            t2.backward(l2);

            assert!(bits_eq(t1.value(out1), t2.value(out2)), "{act:?} forward");
            for (va, vb, name) in [(x1, x2, "x"), (w1, w2, "w"), (b1, b2, "bias")] {
                assert!(
                    bits_eq(t1.grad(va).unwrap(), t2.grad(vb).unwrap()),
                    "{act:?} grad {name}"
                );
            }
        }
    }

    #[test]
    fn fused_linear2_matches_gru_gate_sequence_bitwise() {
        // The exact op sequence GruCell::gate used to record:
        // matmul, matmul, add, add_bias, activation.
        let x = seeded(6, 5, 51);
        let h = seeded(6, 4, 52);
        let wv = seeded(5, 3, 53);
        let uv = seeded(4, 3, 54);
        let b = seeded(1, 3, 55);
        let target = Tensor::full(6, 3, 0.1);

        let mut t1 = Tape::new();
        let xs = t1.leaf(x.clone());
        let hs = t1.leaf(h.clone());
        let ws = t1.leaf(wv.clone());
        let us = t1.leaf(uv.clone());
        let bs = t1.leaf(b.clone());
        let xw = t1.matmul(xs, ws);
        let hu = t1.matmul(hs, us);
        let s = t1.add(xw, hu);
        let sb = t1.add_bias(s, bs);
        let out1 = t1.sigmoid(sb);
        let l1 = t1.mse_loss(out1, &target);
        t1.backward(l1);

        let mut t2 = Tape::new();
        let xs2 = t2.leaf(x.clone());
        let hs2 = t2.leaf(h.clone());
        let ws2 = t2.leaf(wv.clone());
        let us2 = t2.leaf(uv.clone());
        let bs2 = t2.leaf(b.clone());
        let out2 = t2.linear2(xs2, ws2, hs2, us2, bs2, FusedAct::Sigmoid);
        let l2 = t2.mse_loss(out2, &target);
        t2.backward(l2);

        assert!(bits_eq(t1.value(out1), t2.value(out2)), "forward");
        for (va, vb, name) in [
            (xs, xs2, "x"),
            (hs, hs2, "h"),
            (ws, ws2, "w"),
            (us, us2, "u"),
            (bs, bs2, "bias"),
        ] {
            assert!(
                bits_eq(t1.grad(va).unwrap(), t2.grad(vb).unwrap()),
                "grad {name}"
            );
        }
    }

    #[test]
    fn replay_is_bitwise_identical_and_allocation_free() {
        // A training-shaped loop over a fixed graph: params updated after
        // each epoch so values genuinely change, one persistent tape vs a
        // fresh tape per epoch.
        let index = vec![0u32, 2, 1, 2, 0, 1];
        let scatter_to = vec![1u32, 0, 1, 2, 2, 0];
        let targets = vec![0u32, 2, 1];
        let mut ps1 = ParamSet::new();
        let w1 = ps1.add("w", seeded(4, 3, 61));
        let b1 = ps1.add("b", seeded(1, 3, 62));
        let mut ps2 = ParamSet::new();
        let w2 = ps2.add("w", seeded(4, 3, 61));
        let b2 = ps2.add("b", seeded(1, 3, 62));
        let data = seeded(3, 4, 63);

        let run = |tape: &mut Tape, ps: &ParamSet, w: ParamId, b: ParamId| -> (f32, Tensor) {
            let x = tape.leaf_ref(&data);
            let wv = tape.param(ps, w);
            let bv = tape.param(ps, b);
            let g = tape.gather_rows(x, &index);
            let s = tape.scatter_mean_rows(g, &scatter_to, 3);
            let c = tape.concat_cols(&[s, x]);
            let pre = tape.tanh(c);
            let two = tape.scale(pre, 2.0);
            let half = tape.mul(two, pre);
            let skinny = tape.gather_rows(x, &[0, 1, 2]);
            let lin = tape.linear2(skinny, wv, skinny, wv, bv, FusedAct::Relu);
            let _ = half;
            let loss = tape.softmax_cross_entropy(lin, &targets);
            tape.backward(loss);
            (
                tape.value(loss).get(0, 0),
                tape.grad(wv).expect("w grad").clone(),
            )
        };

        let mut persistent = Tape::new();
        for epoch in 0..4 {
            persistent.reset();
            let (loss_p, gw_p) = run(&mut persistent, &ps1, w1, b1);
            persistent.accumulate_param_grads(&mut ps1);

            let mut fresh = Tape::new();
            let (loss_f, gw_f) = run(&mut fresh, &ps2, w2, b2);
            fresh.accumulate_param_grads(&mut ps2);

            assert_eq!(
                loss_p.to_bits(),
                loss_f.to_bits(),
                "epoch {epoch} loss differs"
            );
            assert!(bits_eq(&gw_p, &gw_f), "epoch {epoch} grad differs");

            if epoch >= 1 {
                assert!(persistent.replaying(), "epoch {epoch} should replay");
                assert_eq!(
                    persistent.pass_alloc_bytes(),
                    0,
                    "epoch {epoch} replay must not allocate"
                );
                assert!(persistent.pass_reuse_count() > 0);
            }

            // Identical parameter updates on both sides.
            for (ps, w, b) in [(&mut ps1, w1, b1), (&mut ps2, w2, b2)] {
                for id in [w, b] {
                    let g = ps.grad(id).clone();
                    ps.value_mut(id).axpy(-0.05, &g);
                }
                ps.zero_grads();
            }
        }
    }

    #[test]
    fn grad_is_none_for_untouched_nodes() {
        let mut t = Tape::new();
        let unused = t.leaf(Tensor::full(2, 2, 1.0));
        let x = t.leaf(Tensor::row(vec![1.0, 2.0]));
        let loss = t.mse_loss(x, &Tensor::row(vec![0.0, 0.0]));
        t.backward(loss);
        assert!(t.grad(unused).is_none());
        assert!(t.grad(x).is_some());
    }

    #[test]
    fn softmax_ce_value_matches_manual() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        let loss = t.softmax_cross_entropy(logits, &[0]);
        // Uniform over two classes: loss = ln 2.
        assert!((t.value(loss).get(0, 0) - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn dropout_scales_and_masks() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::row(vec![1.0, 2.0, 3.0, 4.0]));
        let mask = Tensor::row(vec![2.0, 0.0, 2.0, 0.0]); // p = 0.5 inverted
        let d = t.dropout(x, mask);
        assert_eq!(t.value(d).data(), &[2.0, 0.0, 6.0, 0.0]);
        let loss = t.mse_loss(d, &Tensor::row(vec![0.0; 4]));
        t.backward(loss);
        let g = t.grad(x).expect("dropout grad");
        assert_eq!(g.data()[1], 0.0);
        assert_eq!(g.data()[3], 0.0);
        assert!(g.data()[0] != 0.0);
    }

    #[test]
    fn param_grads_accumulate_into_set() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::full(2, 2, 0.5));
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let wv = t.param(&ps, w);
        let h = t.matmul(x, wv);
        let loss = t.mse_loss(h, &Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        t.backward(loss);
        t.accumulate_param_grads(&mut ps);
        assert!(ps.grad(w).norm() > 0.0);
        // Second tape accumulates (not overwrites).
        let before = ps.grad(w).clone();
        let mut t2 = Tape::new();
        let x2 = t2.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let wv2 = t2.param(&ps, w);
        let h2 = t2.matmul(x2, wv2);
        let loss2 = t2.mse_loss(h2, &Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        t2.backward(loss2);
        t2.accumulate_param_grads(&mut ps);
        assert!((ps.grad(w).norm() - 2.0 * before.norm()).abs() < 1e-5);
    }

    #[test]
    fn scatter_mean_averages() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec(3, 1, vec![1.0, 3.0, 10.0]));
        let s = t.scatter_mean_rows(x, &[0, 0, 1], 3);
        assert_eq!(t.value(s).data(), &[2.0, 10.0, 0.0]);
    }

    #[test]
    fn grad_of_row_scale_ops() {
        let scale_src = seeded(4, 1, 21).map(|x| x.abs() + 0.5);
        check_grad(
            seeded(4, 3, 20),
            move |t, x| {
                let s = t.leaf(scale_src.clone());
                let m = t.mul_row_scale(x, s);
                let d = t.div_row_scale(m, s);
                let m2 = t.mul_row_scale(d, s);
                t.mse_loss(m2, &Tensor::full(4, 3, 0.1))
            },
            3e-2,
        );
    }

    #[test]
    fn grad_flows_into_row_scale_vector() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let s = t.leaf(Tensor::from_vec(2, 1, vec![2.0, 0.5]));
        let m = t.mul_row_scale(a, s);
        assert_eq!(t.value(m).data(), &[2.0, 4.0, 1.5, 2.0]);
        let loss = t.mse_loss(m, &Tensor::zeros(2, 2));
        t.backward(loss);
        assert!(t.grad(s).expect("s grad").norm() > 0.0);
        assert!(t.grad(a).expect("a grad").norm() > 0.0);
    }

    #[test]
    fn div_row_scale_inverts_mul() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let s = t.leaf(Tensor::from_vec(2, 1, vec![4.0, 0.25]));
        let m = t.mul_row_scale(a, s);
        let d = t.div_row_scale(m, s);
        for (x, y) in t.value(d).data().iter().zip(t.value(a).data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn add_scalar_shifts_values_with_identity_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::row(vec![1.0, 2.0]));
        let b = t.add_scalar(a, 1e-3);
        assert!((t.value(b).get(0, 0) - 1.001).abs() < 1e-6);
        let loss = t.mse_loss(b, &Tensor::row(vec![0.0, 0.0]));
        t.backward(loss);
        assert!(t.grad(a).expect("grad").norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "backward root must be a scalar")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros(2, 2));
        t.backward(x);
    }
}
