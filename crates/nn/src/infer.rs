//! Grad-free forward kernels for the inference hot path.
//!
//! The serving engine (`mga-serve`) must produce predictions **bitwise
//! identical** to the tape-based training forward pass while paying for
//! none of its machinery — no node slots, no gradient bookkeeping, no op
//! recording. These helpers re-enter the *same* numeric kernels the tape
//! ops call ([`crate::tensor::matmul_into`] with its i-k-j blocked
//! accumulation, [`crate::ew::bias_act`] for the row-broadcast bias +
//! activation), so every output element is computed by the identical
//! instruction sequence in the identical order: parity is structural, not
//! approximate.
//!
//! All functions write into caller-provided buffers and allocate nothing;
//! the serving engine recycles its buffers through an [`crate::arena::Arena`].

use crate::ew;
use crate::simd;
use crate::tape::FusedAct;
use crate::tensor::{self, Tensor};

/// Row-broadcast bias + activation over `out` — the tail of every fused
/// linear kernel (f32 or quantized), kept in one place so the activation
/// expressions can never drift between backends.
pub fn apply_bias_act(out: &mut [f32], brow: &[f32], act: FusedAct) {
    match act {
        FusedAct::Identity => ew::bias_act(out, brow, |z| z),
        FusedAct::Relu => ew::bias_act(out, brow, |z| z.max(0.0)),
        FusedAct::Sigmoid => ew::bias_act(out, brow, |z| 1.0 / (1.0 + (-z).exp())),
        FusedAct::Tanh => ew::bias_act(out, brow, f32::tanh),
    }
}

/// `out[..rows*n] = act(x · w + b)` for row-major `x` (`rows × k`) and a
/// weight tensor `w` (`k × n`) with bias `b` (`1 × n`) — the grad-free
/// twin of the tape's `FusedLinear` op (same zero-fill, same matmul
/// kernel, same fused bias+activation pass, hence bitwise-identical
/// results row for row).
pub fn fused_linear_into(
    out: &mut [f32],
    x: &[f32],
    rows: usize,
    w: &Tensor,
    b: &Tensor,
    act: FusedAct,
) {
    fused_linear_with(simd::choose_matmul(w.cols()), out, x, rows, w, b, act);
}

/// [`fused_linear_into`] with a pre-resolved matmul panel — the frozen
/// inference plans resolve the kernel once per stage at compile time and
/// pass it here, keeping the per-request path branch-free.
pub fn fused_linear_with(
    panel: simd::PanelFn,
    out: &mut [f32],
    x: &[f32],
    rows: usize,
    w: &Tensor,
    b: &Tensor,
    act: FusedAct,
) {
    let (k, n) = w.shape();
    debug_assert_eq!(x.len(), rows * k, "input row length mismatch");
    debug_assert_eq!(out.len(), rows * n, "output buffer length mismatch");
    debug_assert_eq!(b.shape(), (1, n), "bias must be [1 x cols]");
    out.fill(0.0);
    tensor::matmul_into_with(panel, out, x, rows, k, w.data(), n);
    apply_bias_act(out, b.row_slice(0), act);
}

/// Index of the maximum element of `row` under `f32::total_cmp`, with
/// `Iterator::max_by`'s tie-breaking (last maximum wins) — the exact
/// expression the model's `predict` uses, so class decisions match it
/// even on ties and non-finite logits.
pub fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// [`argmax`] plus the top-1 − top-2 decision margin, for telemetry.
///
/// The winning index is decided by the **same comparator and tie-break**
/// as [`argmax`] (`total_cmp`, last maximum wins), so the class half of
/// the result is bitwise-interchangeable with it — the serving engine
/// uses this everywhere and stays prediction-identical to training.
/// Rows shorter than two elements have no runner-up; their margin is
/// defined as `0.0` (callers treat single-class heads as fully
/// confident).
pub fn argmax_margin(row: &[f32]) -> (usize, f32) {
    if row.len() < 2 {
        return (0, 0.0);
    }
    let mut best_i = 0usize;
    let mut best = row[0];
    let mut second = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v.total_cmp(&best) != std::cmp::Ordering::Less {
            second = best;
            best = v;
            best_i = i;
        } else if v.total_cmp(&second) == std::cmp::Ordering::Greater {
            second = v;
        }
    }
    (best_i, best - second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
        )
    }

    /// The grad-free kernel and the tape's FusedLinear op must agree to
    /// the bit for every activation, including on single rows (the
    /// serving fast path) and multi-row micro-batches.
    #[test]
    fn fused_linear_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for act in [
            FusedAct::Identity,
            FusedAct::Relu,
            FusedAct::Sigmoid,
            FusedAct::Tanh,
        ] {
            for rows in [1usize, 3, 17] {
                let (k, n) = (13, 9);
                let x = rand_tensor(&mut rng, rows, k);
                let w = rand_tensor(&mut rng, k, n);
                let b = rand_tensor(&mut rng, 1, n);

                let mut tape = Tape::new();
                let xv = tape.leaf_ref(&x);
                let wv = tape.leaf_ref(&w);
                let bv = tape.leaf_ref(&b);
                let y = tape.linear(xv, wv, bv, act);
                let want: Vec<u32> = tape.value(y).data().iter().map(|v| v.to_bits()).collect();

                let mut out = vec![f32::NAN; rows * n];
                fused_linear_into(&mut out, x.data(), rows, &w, &b, act);
                let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "act {act:?} rows {rows} diverged from tape");
            }
        }
    }

    #[test]
    fn argmax_matches_predict_comparator() {
        assert_eq!(
            argmax(&[0.1, 0.5, 0.5, 0.2]),
            2,
            "max_by keeps the last maximum"
        );
        assert_eq!(argmax(&[-1.0, -2.0]), 0);
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1e30]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn argmax_margin_class_matches_argmax() {
        // Hand-picked edge cases: ties (last wins), negatives, NaN
        // (total_cmp sorts positive NaN above +inf), short rows.
        let cases: Vec<Vec<f32>> = vec![
            vec![0.1, 0.5, 0.5, 0.2],
            vec![-1.0, -2.0],
            vec![f32::NEG_INFINITY, -1e30],
            vec![3.0],
            vec![],
            vec![f32::NAN, 1.0, 2.0],
            vec![1.0, f32::NAN],
            vec![2.0, 2.0, 2.0],
        ];
        for row in &cases {
            assert_eq!(argmax_margin(row).0, argmax(row), "row {row:?}");
        }
        // Randomized agreement sweep with frequent ties.
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for _ in 0..500 {
            let n = rng.gen_range(1..9usize);
            let row: Vec<f32> = (0..n).map(|_| rng.gen_range(-2..3) as f32 * 0.5).collect();
            let (cls, margin) = argmax_margin(&row);
            assert_eq!(cls, argmax(&row), "row {row:?}");
            if n >= 2 {
                let mut sorted = row.clone();
                sorted.sort_by(|a, b| b.total_cmp(a));
                assert_eq!(margin, sorted[0] - sorted[1], "row {row:?}");
            } else {
                assert_eq!(margin, 0.0);
            }
        }
    }
}
