//! Dense row-major f32 tensors with cache-blocked, thread-parallel matmul.
//!
//! Tensors here are rank-2 matrices `[rows, cols]`; vectors are `[1, n]`
//! rows. That covers everything the MGA models need while keeping the
//! kernels simple enough to optimize properly: the matmul is i-k-j loop
//! ordered (streaming through `b` rows), blocked for L1/L2 reuse, and
//! splits row-panels across the persistent worker pool ([`crate::pool`])
//! for large problems. Row-panel partitioning keeps per-element
//! accumulation order identical to the sequential kernel, so results are
//! bitwise independent of the thread count.
//!
//! The inner row-panel kernels live in [`crate::simd`]: an explicit-AVX2
//! register-blocked backend with a portable scalar fallback, both
//! bitwise-identical per element. The `matmul_into` entry points select
//! per call; the `*_with` variants take a pre-resolved [`simd::PanelFn`]
//! so plan-time dispatch (tape replay, `InferencePlan`) skips selection
//! entirely. Tensor storage is 64-byte aligned ([`crate::aligned`]), so
//! every full buffer entering these kernels honors the microkernel
//! alignment contract.

use crate::aligned::AlignedVec;
use crate::pool;
use crate::simd;
use std::fmt;

/// Threshold (in multiply-adds) above which matmul fans out to threads.
const PAR_FLOPS_THRESHOLD: usize = 1 << 21;

/// A dense row-major matrix of `f32` over 64-byte-aligned storage.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: AlignedVec,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: AlignedVec::zeroed(rows * cols),
        }
    }

    /// A `0 × 0` placeholder that owns no storage (e.g. a grad slot that
    /// has not been touched yet).
    pub fn empty() -> Tensor {
        Tensor {
            rows: 0,
            cols: 0,
            data: AlignedVec::new(),
        }
    }

    /// Reshape in place to `rows × cols`, keeping the existing heap
    /// buffer whenever its capacity suffices. Contents are left
    /// **unspecified** — the caller must fully overwrite them. Returns
    /// the number of bytes newly allocated (0 when the buffer was
    /// reused), which the tape feeds into its allocation accounting.
    pub fn reset_shape(&mut self, rows: usize, cols: usize) -> usize {
        let len = rows * cols;
        let grew = len.saturating_sub(self.data.capacity()) * std::mem::size_of::<f32>();
        self.data.resize_zeroed(len);
        self.rows = rows;
        self.cols = cols;
        grew
    }

    /// Take ownership of the backing buffer, leaving `self` empty. Used
    /// by the tape to return node storage to its arena.
    pub fn take_data(&mut self) -> AlignedVec {
        self.rows = 0;
        self.cols = 0;
        self.data.take()
    }

    /// Adopt `data` as the backing buffer for a `rows × cols` view.
    /// Panics if the length disagrees (the arena hands back exact
    /// size-class matches).
    pub fn adopt(&mut self, rows: usize, cols: usize, data: AlignedVec) {
        assert_eq!(data.len(), rows * cols, "adopted buffer length mismatch");
        debug_assert!(
            crate::aligned::is_aligned(&data),
            "adopted buffer violates the 64-byte alignment contract"
        );
        self.rows = rows;
        self.cols = cols;
        self.data = data;
    }

    /// Overwrite `self` with `src`'s contents (shapes must match).
    pub fn copy_from(&mut self, src: &Tensor) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// A `rows × cols` tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Tensor {
        Tensor {
            rows,
            cols,
            data: AlignedVec::filled(rows * cols, v),
        }
    }

    /// Build from a flat row-major buffer (copied into aligned storage).
    /// Panics if lengths disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Tensor {
            rows,
            cols,
            data: AlignedVec::from_slice(&data),
        }
    }

    /// A `1 × n` row vector.
    pub fn row(data: Vec<f32>) -> Tensor {
        Tensor {
            rows: 1,
            cols: data.len(),
            data: AlignedVec::from_slice(&data),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another tensor of identical shape.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scale all elements in place.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Matrix product `self × other`, parallel and cache-blocked.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner-dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        matmul_into(
            &mut out.data,
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
        );
        out
    }

    /// `selfᵀ × other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul row mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        t_matmul_into(
            &mut out.data,
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
        );
        out
    }

    /// `self × otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t col mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        matmul_t_into(
            &mut out.data,
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            false,
        );
        out
    }
}

/// `out = a(m×k) × b(n×k)ᵀ` (overwrite), or `out += …` when `acc`. Each
/// output element is one full dot product followed by a single store or
/// add, so the `acc` form is bit-identical to materializing the product
/// and `add_assign`ing it. Runs through the backend selected by
/// [`simd::choose_mt_matmul`] — the AVX2 panel gathers `b` columns so
/// every lane is the same ascending-k dot chain, keeping the bits
/// identical to the scalar kernel.
pub fn matmul_t_into(
    out: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    acc: bool,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    let panel_fn = simd::choose_mt_matmul(n);
    let threads = pool::num_threads();
    if m * n * k >= PAR_FLOPS_THRESHOLD && threads > 1 && m >= 2 * threads {
        let out_ptr = pool::SendPtr::new(out.as_mut_ptr());
        pool::parallel_ranges(m, |_, lo, hi| {
            let panel =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(lo * n), (hi - lo) * n) };
            panel_fn(panel, &a[lo * k..hi * k], b, hi - lo, k, n, acc);
        });
    } else {
        panel_fn(out, a, b, m, k, n, acc);
    }
}

/// `out += a(rows×acols)ᵀ × b(rows×n)`; `out` must hold zeros (or a
/// partial result to accumulate onto, but note the per-element rounding
/// then interleaves — the tape only passes zeroed buffers).
pub fn t_matmul_into(out: &mut [f32], a: &[f32], rows: usize, acols: usize, b: &[f32], n: usize) {
    debug_assert_eq!(out.len(), acols * n);
    debug_assert_eq!(a.len(), rows * acols);
    debug_assert_eq!(b.len(), rows * n);
    let m = acols;
    let panel_fn = simd::choose_t_matmul(n);
    let threads = pool::num_threads();
    if m * n * rows >= PAR_FLOPS_THRESHOLD && threads > 1 && m >= 2 * threads {
        let out_ptr = pool::SendPtr::new(out.as_mut_ptr());
        pool::parallel_ranges(m, |_, lo, hi| {
            // Output rows [lo, hi) — i.e. columns [lo, hi) of A — are
            // exclusive to this chunk; k still runs in full order.
            let panel =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(lo * n), (hi - lo) * n) };
            panel_fn(panel, a, b, rows, acols, n, lo, hi);
        });
    } else {
        panel_fn(out, a, b, rows, acols, n, 0, m);
    }
}

/// `out += a(m×k) × b(k×n)` with i-k-j ordering and optional row-panel
/// threading, through the backend selected by [`simd::select_matmul`].
/// `out` must be zeroed (or hold a partial result to accumulate onto).
pub fn matmul_into(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    matmul_into_with(simd::choose_matmul(n), out, a, m, k, b, n);
}

/// [`matmul_into`] with a pre-resolved panel kernel — the plan-time
/// dispatch path (tape replay, frozen inference plans) that keeps
/// selection out of the hot loop.
pub fn matmul_into_with(
    panel_fn: simd::PanelFn,
    out: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let flops = m * n * k;
    let threads = pool::num_threads();
    if flops >= PAR_FLOPS_THRESHOLD && threads > 1 && m >= 2 * threads {
        let out_ptr = pool::SendPtr::new(out.as_mut_ptr());
        pool::parallel_ranges(m, |_, lo, hi| {
            // Row panels are disjoint slices of `out`.
            let panel =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(lo * n), (hi - lo) * n) };
            panel_fn(panel, &a[lo * k..hi * k], hi - lo, k, b, n);
        });
    } else {
        panel_fn(out, a, m, k, b, n);
    }
}

/// `out += a(m×k) × b(k×n)` without the zero-skip fast path: every
/// product is accumulated in k-order, so each output element's rounding
/// (including `-0.0` behavior and NaN propagation) is term-for-term
/// identical to an unskipped sequential dot product. The backward pass
/// uses this against a pre-transposed operand to compute `G · Wᵀ` with
/// bits identical to [`matmul_t_into`]'s dot kernel but a vectorizable
/// row-major inner loop.
pub fn matmul_dense_into(out: &mut [f32], a: &[f32], m: usize, k: usize, b: &[f32], n: usize) {
    matmul_dense_into_with(simd::choose_dense(n), out, a, m, k, b, n);
}

/// [`matmul_dense_into`] with a pre-resolved panel kernel.
pub fn matmul_dense_into_with(
    panel_fn: simd::PanelFn,
    out: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let flops = m * n * k;
    let threads = pool::num_threads();
    if flops >= PAR_FLOPS_THRESHOLD && threads > 1 && m >= 2 * threads {
        let out_ptr = pool::SendPtr::new(out.as_mut_ptr());
        pool::parallel_ranges(m, |_, lo, hi| {
            let panel =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(lo * n), (hi - lo) * n) };
            panel_fn(panel, &a[lo * k..hi * k], hi - lo, k, b, n);
        });
    } else {
        panel_fn(out, a, m, k, b, n);
    }
}

/// `out[c][r] = a[r][c]` — materialize the transpose of a `rows × cols`
/// matrix into `out` (`cols × rows`).
pub fn transpose_into(out: &mut [f32], a: &[f32], rows: usize, cols: usize) {
    debug_assert_eq!(out.len(), rows * cols);
    debug_assert_eq!(a.len(), rows * cols);
    for (r, arow) in a.chunks_exact(cols.max(1)).enumerate() {
        for (c, &v) in arow.iter().enumerate() {
            out[c * rows + r] = v;
        }
    }
}

/// Number of compute threads the parallel kernels use (the persistent
/// pool's size; respects `MGA_THREADS`).
pub fn available_threads() -> usize {
    pool::num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn seeded(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Simple LCG so the test has no rand dependency path.
        let mut state = seed as u64 * 2654435761 + 1;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = seeded(7, 5, 1);
        let b = seeded(5, 9, 2);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_matches_naive_large_parallel() {
        // Big enough to cross the parallel threshold.
        let a = seeded(256, 128, 3);
        let b = seeded(128, 96, 4);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-2);
    }

    #[test]
    fn matmul_identity() {
        let a = seeded(4, 4, 5);
        let mut eye = Tensor::zeros(4, 4);
        for i in 0..4 {
            eye.set(i, i, 1.0);
        }
        assert_close(&a.matmul(&eye), &a, 1e-6);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = seeded(6, 4, 6);
        let b = seeded(6, 3, 7);
        assert_close(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-4);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = seeded(5, 4, 8);
        let b = seeded(7, 4, 9);
        assert_close(&a.matmul_t(&b), &a.matmul(&b.transpose()), 1e-4);
    }

    #[test]
    fn transpose_involution() {
        let a = seeded(3, 8, 10);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(2, 2, 1.0);
        let b = Tensor::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0; 4]);
        a.scale_assign(0.25);
        assert_eq!(a.data(), &[0.5; 4]);
    }

    #[test]
    fn zip_and_map() {
        let a = Tensor::row(vec![1.0, 2.0, 3.0]);
        let b = Tensor::row(vec![4.0, 5.0, 6.0]);
        let c = a.zip(&b, |x, y| x * y);
        assert_eq!(c.data(), &[4.0, 10.0, 18.0]);
        assert_eq!(c.map(|x| x / 2.0).data(), &[2.0, 5.0, 9.0]);
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.row_slice(1), &[4., 5., 6.]);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.sum(), 21.0);
    }

    #[test]
    fn matmul_into_accumulates_onto_existing_output() {
        let a = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        let b = Tensor::from_vec(2, 2, vec![5., 6., 7., 8.]);
        let mut out = vec![100.0f32; 4];
        matmul_into(&mut out, a.data(), 2, 2, b.data(), 2);
        assert_eq!(out, vec![105.0, 106.0, 107.0, 108.0]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn norm_is_frobenius() {
        let t = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }
}
