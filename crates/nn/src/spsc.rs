//! Bounded lock-free single-producer/single-consumer rings.
//!
//! The serving cluster's data plane pins one producer (the caller
//! thread) and one consumer (a shard worker) to each ring, which makes
//! the classic Lamport queue sufficient: two monotonically increasing
//! cursors, each written by exactly one side, with release/acquire
//! pairing on the cursor stores ordering the slot payloads. No CAS, no
//! shared mutable cursor — a push and a pop are one unsynchronized slot
//! write plus one atomic store each.
//!
//! Layout details that matter at the throughput the cluster targets:
//!
//! * cursors live in separate cache lines ([`CachePadded`]) so the
//!   producer's tail store never invalidates the consumer's head line;
//! * each side keeps a *cached* copy of the opposite cursor and only
//!   re-reads the shared atomic when the cached value says the ring
//!   looks full/empty, cutting cross-core traffic to ~1 coherence miss
//!   per `capacity` operations in steady state;
//! * capacity is rounded up to a power of two so slot indexing is a
//!   mask, and cursors never wrap in practice (u64 at nanosecond rates
//!   outlives the hardware).
//!
//! `try_push`/`try_pop` never block and never spin — backpressure policy
//! (spin, park, shed) belongs to the caller. Ordering correctness under
//! adversarial interleavings is exercised by `tests/spsc_stress.rs`.

use crate::aligned::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
    /// Consumer cursor: next slot to pop. Written by the consumer only.
    head: CachePadded<AtomicU64>,
    /// Producer cursor: next slot to fill. Written by the producer only.
    tail: CachePadded<AtomicU64>,
}

// Slots are only touched by the side the cursor protocol assigns them
// to, so the ring is safe to share whenever the payload itself moves
// between threads.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both handles are gone; drain whatever is still queued.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = self.slots[(i & self.mask) as usize].get();
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// Producing half of a ring; exactly one per ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of the producer cursor (authoritative; the atomic is
    /// the published view).
    tail: u64,
    /// Stale-but-safe copy of the consumer cursor.
    head_cache: u64,
}

/// Consuming half of a ring; exactly one per ring.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    head: u64,
    tail_cache: u64,
}

/// A bounded SPSC ring holding at least `capacity` elements (rounded up
/// to the next power of two). Returns the two single-owner endpoints.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        slots,
        mask: (cap - 1) as u64,
        head: CachePadded::new(AtomicU64::new(0)),
        tail: CachePadded::new(AtomicU64::new(0)),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            inner,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Capacity in elements (power of two).
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Push without blocking; hands `v` back when the ring is full.
    #[inline]
    pub fn try_push(&mut self, v: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail - self.head_cache == cap {
            // Looks full — refresh the consumer cursor before giving up.
            self.head_cache = self.inner.head.load(Ordering::Acquire);
            if self.tail - self.head_cache == cap {
                return Err(v);
            }
        }
        let slot = self.inner.slots[(self.tail & self.inner.mask) as usize].get();
        unsafe { (*slot).write(v) };
        self.tail += 1;
        // Publish the slot write.
        self.inner.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of queued elements (exact from the producer's side; reads
    /// the shared cursor, does not touch the push-path cache).
    pub fn len(&self) -> usize {
        (self.tail - self.inner.head.load(Ordering::Acquire)) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Pop without blocking; `None` when the ring is empty.
    #[inline]
    pub fn try_pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            // Looks empty — refresh the producer cursor before giving up.
            self.tail_cache = self.inner.tail.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let slot = self.inner.slots[(self.head & self.inner.mask) as usize].get();
        let v = unsafe { (*slot).assume_init_read() };
        self.head += 1;
        // Publish that the slot may be refilled.
        self.inner.head.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Number of queued elements (exact from the consumer's side; reads
    /// the shared cursor, does not touch the pop-path cache).
    pub fn len(&self) -> usize {
        (self.inner.tail.load(Ordering::Acquire) - self.head) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (p, _c) = ring::<u32>(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = ring::<u32>(1);
        assert_eq!(p.capacity(), 2, "minimum capacity is 2");
    }

    #[test]
    fn fifo_order_within_capacity() {
        let (mut p, mut c) = ring(8);
        for i in 0..8 {
            assert!(p.try_push(i).is_ok());
        }
        assert_eq!(p.try_push(99), Err(99), "ring full hands the value back");
        for i in 0..8 {
            assert_eq!(c.try_pop(), Some(i));
        }
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn wraps_many_times() {
        let (mut p, mut c) = ring(4);
        for i in 0..1000u64 {
            assert!(p.try_push(i).is_ok());
            assert_eq!(c.try_pop(), Some(i));
        }
        assert!(c.is_empty());
        assert!(p.is_empty());
    }

    #[test]
    fn len_agrees_on_both_sides() {
        let (mut p, mut c) = ring::<u8>(8);
        for i in 0..5 {
            assert!(p.try_push(i).is_ok());
        }
        assert_eq!(p.len(), 5);
        assert_eq!(c.len(), 5);
        c.try_pop();
        assert_eq!(c.len(), 4);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn queued_values_drop_with_the_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut p, mut c) = ring(4);
            p.try_push(Token).unwrap();
            p.try_push(Token).unwrap();
            p.try_push(Token).unwrap();
            drop(c.try_pop()); // one dropped by consumption
            assert_eq!(c.len(), 2);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 3, "leftovers dropped");
    }

    #[test]
    fn two_thread_handoff_preserves_sequence() {
        let (mut p, mut c) = ring(16);
        let n = 20_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match p.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            // Yield, not spin: on a single-core box the
                            // consumer cannot run until we do.
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            if let Some(v) = c.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(c.try_pop(), None);
    }
}
