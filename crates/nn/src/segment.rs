//! Segment (gather/scatter) row kernels shared by the tape's forward and
//! backward passes, parallelized over the persistent [`crate::pool`].
//!
//! Bitwise determinism is load-bearing here: training must produce
//! identical results for any `MGA_THREADS`. Gather partitions *output*
//! rows, and each output row is a copy (or scaled copy) of one source
//! row, so no accumulation crosses a chunk boundary. Scatter also
//! partitions *output* rows; every chunk scans the full index list in
//! order and accumulates only the destinations it owns, so each output
//! row sees contributions in exactly the sequential order regardless of
//! thread count (at the cost of re-scanning the index per chunk, which
//! is cheap next to the row arithmetic).

use crate::pool;

/// Element-count threshold above which segment ops fan out to the pool.
const PAR_ELEMS_THRESHOLD: usize = 1 << 16;

/// `out[i] = src[index[i]]` for row vectors of width `cols`.
pub fn gather_rows_into(out: &mut [f32], src: &[f32], cols: usize, index: &[u32]) {
    gather_dispatch(out, src, cols, index, None, false);
}

/// `out[i] += src[index[i]]` — the scatter-sum backward, accumulate
/// form. Each output row receives exactly one added row, so in-place
/// accumulation rounds identically to materialize-then-`add_assign`.
pub fn gather_rows_acc_into(out: &mut [f32], src: &[f32], cols: usize, index: &[u32]) {
    gather_dispatch(out, src, cols, index, None, true);
}

/// `out[i] = src[index[i]] * row_scale[index[i]]` — the scatter-mean
/// backward: each gathered row is scaled by its group's 1/count.
pub fn gather_rows_scaled_into(
    out: &mut [f32],
    src: &[f32],
    cols: usize,
    index: &[u32],
    row_scale: &[f32],
) {
    gather_dispatch(out, src, cols, index, Some(row_scale), false);
}

/// Accumulate form of [`gather_rows_scaled_into`]: `out[i] +=
/// src[index[i]] * row_scale[index[i]]` (one product per element).
pub fn gather_rows_scaled_acc_into(
    out: &mut [f32],
    src: &[f32],
    cols: usize,
    index: &[u32],
    row_scale: &[f32],
) {
    gather_dispatch(out, src, cols, index, Some(row_scale), true);
}

fn gather_dispatch(
    out: &mut [f32],
    src: &[f32],
    cols: usize,
    index: &[u32],
    scale: Option<&[f32]>,
    acc: bool,
) {
    debug_assert_eq!(out.len(), index.len() * cols);
    if index.len() * cols >= PAR_ELEMS_THRESHOLD && pool::num_threads() > 1 && index.len() >= 2 {
        let out_ptr = pool::SendPtr::new(out.as_mut_ptr());
        pool::parallel_ranges(index.len(), |_, lo, hi| {
            // Output rows [lo, hi) are exclusive to this chunk.
            let panel = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(lo * cols), (hi - lo) * cols)
            };
            gather_range(panel, src, cols, &index[lo..hi], scale, acc);
        });
    } else {
        gather_range(out, src, cols, index, scale, acc);
    }
}

fn gather_range(
    out: &mut [f32],
    src: &[f32],
    cols: usize,
    index: &[u32],
    scale: Option<&[f32]>,
    acc: bool,
) {
    for (i, &s) in index.iter().enumerate() {
        let s = s as usize;
        let orow = &mut out[i * cols..(i + 1) * cols];
        let srow = &src[s * cols..(s + 1) * cols];
        match (scale, acc) {
            (None, false) => orow.copy_from_slice(srow),
            (None, true) => {
                for (o, &x) in orow.iter_mut().zip(srow) {
                    *o += x;
                }
            }
            (Some(sc), false) => {
                let f = sc[s];
                for (o, &x) in orow.iter_mut().zip(srow) {
                    *o = x * f;
                }
            }
            (Some(sc), true) => {
                let f = sc[s];
                for (o, &x) in orow.iter_mut().zip(srow) {
                    *o += x * f;
                }
            }
        }
    }
}

/// `out[index[i]] += src[i]` for row vectors of width `cols`; with
/// `mean`, each touched output row is then divided by its contribution
/// count. Output rows no index entry points at are left untouched —
/// empty groups read back as exact zeros (never `0/0 = NaN`).
pub fn scatter_rows_into(
    out: &mut [f32],
    out_rows: usize,
    src: &[f32],
    cols: usize,
    index: &[u32],
    mean: bool,
) {
    debug_assert_eq!(out.len(), out_rows * cols);
    debug_assert_eq!(src.len(), index.len() * cols);
    if index.len() * cols >= PAR_ELEMS_THRESHOLD && pool::num_threads() > 1 && out_rows >= 2 {
        let out_ptr = pool::SendPtr::new(out.as_mut_ptr());
        pool::parallel_ranges(out_rows, |_, lo, hi| {
            let panel = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(lo * cols), (hi - lo) * cols)
            };
            scatter_range(panel, lo, hi, src, cols, index, mean);
        });
    } else {
        scatter_range(out, 0, out_rows, src, cols, index, mean);
    }
}

/// Accumulate the index entries landing in `[lo, hi)` into `out` (the
/// panel for that row range), scanning the full index list in order so
/// per-row accumulation order matches the sequential kernel exactly.
fn scatter_range(
    out: &mut [f32],
    lo: usize,
    hi: usize,
    src: &[f32],
    cols: usize,
    index: &[u32],
    mean: bool,
) {
    // The counts are only consumed by the mean pass; skip the
    // allocation entirely for the (hot) sum form.
    let mut counts = if mean {
        vec![0u32; hi - lo]
    } else {
        Vec::new()
    };
    for (i, &dst) in index.iter().enumerate() {
        let dst = dst as usize;
        if dst < lo || dst >= hi {
            continue;
        }
        if mean {
            counts[dst - lo] += 1;
        }
        let srow = &src[i * cols..(i + 1) * cols];
        let orow = &mut out[(dst - lo) * cols..(dst - lo + 1) * cols];
        for (o, &x) in orow.iter_mut().zip(srow) {
            *o += x;
        }
    }
    if mean {
        for (r, &cnt) in counts.iter().enumerate() {
            // cnt == 0: empty group, row stays zero. cnt == 1: dividing by
            // one would still perturb nothing, skipped to match the
            // historical sequential kernel bit-for-bit.
            if cnt > 1 {
                let inv = 1.0 / cnt as f32;
                for x in &mut out[r * cols..(r + 1) * cols] {
                    *x *= inv;
                }
            }
        }
    }
}

/// Contribution count per output row for `index` (scatter in-degrees).
pub fn row_counts(index: &[u32], out_rows: usize) -> Vec<u32> {
    let mut counts = vec![0u32; out_rows];
    for &d in index {
        counts[d as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_copies_rows() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3 rows × 2 cols
        let index = [2u32, 0, 2];
        let mut out = vec![0.0; 6];
        gather_rows_into(&mut out, &src, 2, &index);
        assert_eq!(out, vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn gather_scaled_applies_per_source_scale() {
        let src = [2.0, 4.0, 10.0, 20.0]; // 2 rows × 2 cols
        let index = [1u32, 0];
        let scale = [0.5, 0.1];
        let mut out = vec![0.0; 4];
        gather_rows_scaled_into(&mut out, &src, 2, &index, &scale);
        assert_eq!(out, vec![1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn scatter_sum_accumulates() {
        let src = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0]; // 3 rows × 2 cols
        let index = [1u32, 1, 0];
        let mut out = vec![0.0; 4];
        scatter_rows_into(&mut out, 2, &src, 2, &index, false);
        assert_eq!(out, vec![3.0, 30.0, 3.0, 30.0]);
    }

    #[test]
    fn scatter_mean_divides_by_count() {
        let src = [2.0, 4.0, 6.0];
        let index = [0u32, 0, 0];
        let mut out = vec![0.0; 1];
        scatter_rows_into(&mut out, 1, &src, 1, &index, true);
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn scatter_mean_empty_groups_stay_zero() {
        // Group 1 receives nothing: its row must be exactly 0.0, not NaN.
        let src = [5.0, 5.0, 7.0, 7.0];
        let index = [0u32, 2];
        let mut out = vec![0.0; 6];
        scatter_rows_into(&mut out, 3, &src, 2, &index, true);
        assert_eq!(out, vec![5.0, 5.0, 0.0, 0.0, 7.0, 7.0]);
        assert!(out.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn scatter_with_no_index_entries_is_all_zero() {
        let mut out = vec![0.0; 8];
        scatter_rows_into(&mut out, 4, &[], 2, &[], true);
        assert_eq!(out, vec![0.0; 8]);
    }

    #[test]
    fn large_parallel_matches_sequential_range() {
        // Cross the parallel threshold and compare against a direct
        // single-range evaluation.
        let rows = 512;
        let cols = 160;
        let groups = 37;
        let src: Vec<f32> = (0..rows * cols).map(|i| (i % 101) as f32 * 0.25).collect();
        let index: Vec<u32> = (0..rows as u32).map(|i| (i * 7) % groups as u32).collect();

        let mut par = vec![0.0; groups * cols];
        scatter_rows_into(&mut par, groups, &src, cols, &index, true);

        let mut seq = vec![0.0; groups * cols];
        scatter_range(&mut seq, 0, groups, &src, cols, &index, true);

        assert!(par
            .iter()
            .zip(&seq)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn row_counts_matches_index() {
        assert_eq!(row_counts(&[0, 2, 2, 2], 4), vec![1, 0, 3, 0]);
    }

    #[test]
    fn gather_acc_adds_onto_existing_output() {
        let src = [1.0, 2.0, 3.0, 4.0]; // 2 rows × 2 cols
        let index = [1u32, 1];
        let mut out = vec![10.0; 4];
        gather_rows_acc_into(&mut out, &src, 2, &index);
        assert_eq!(out, vec![13.0, 14.0, 13.0, 14.0]);
    }

    #[test]
    fn gather_scaled_acc_matches_materialized_add() {
        let src = [2.0, 4.0, 10.0, 20.0];
        let index = [1u32, 0];
        let scale = [0.5, 0.1];
        let mut direct = vec![0.25; 4];
        gather_rows_scaled_acc_into(&mut direct, &src, 2, &index, &scale);
        let mut tmp = vec![0.0; 4];
        gather_rows_scaled_into(&mut tmp, &src, 2, &index, &scale);
        let two_pass: Vec<f32> = tmp.iter().map(|x| 0.25 + x).collect();
        assert!(direct
            .iter()
            .zip(&two_pass)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
