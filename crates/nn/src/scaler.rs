//! Feature scaling: Gaussian-rank scaling (used before the denoising
//! autoencoder, following the paper's §3.2) and min-max scaling to `[0,1]`
//! (used for performance counters and OpenCL transfer/workgroup sizes
//! before fusion).

/// Inverse CDF (quantile function) of the standard normal distribution,
/// via Acklam's rational approximation (|relative error| < 1.15e-9).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit domain is (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Gaussian-rank scaler: maps each feature column to a standard normal
/// distribution by rank. Fitted on training data; transform of unseen
/// values interpolates between the fitted ranks.
///
/// This is the "Gauss rank" trick from the Porto Seguro Kaggle solution
/// the paper cites: sort the column, assign each value the normal quantile
/// of its (clipped) empirical CDF position.
#[derive(Debug, Clone)]
pub struct GaussRankScaler {
    /// Per column: sorted unique training values and their normal scores.
    columns: Vec<(Vec<f32>, Vec<f32>)>,
}

impl GaussRankScaler {
    /// Fit on rows of `data` (each row one sample, `dims` columns).
    pub fn fit(data: &[Vec<f32>], dims: usize) -> GaussRankScaler {
        mga_obs::span!("scaler.gaussrank.fit");
        assert!(!data.is_empty(), "cannot fit scaler on empty data");
        let mut columns = Vec::with_capacity(dims);
        for c in 0..dims {
            let mut vals: Vec<f32> = data.iter().map(|r| r[c]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vals.dedup();
            let n = vals.len();
            let scores: Vec<f32> = (0..n)
                .map(|i| {
                    // Empirical CDF position, clipped away from {0,1}.
                    let p = if n == 1 {
                        0.5
                    } else {
                        (i as f64 + 0.5) / n as f64
                    };
                    inverse_normal_cdf(p) as f32
                })
                .collect();
            columns.push((vals, scores));
        }
        GaussRankScaler { columns }
    }

    /// Transform one sample in place.
    pub fn transform_row(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.columns.len(), "dimension mismatch");
        for (x, (vals, scores)) in row.iter_mut().zip(&self.columns) {
            *x = interp(vals, scores, *x);
        }
    }

    /// Transform a batch.
    pub fn transform(&self, data: &mut [Vec<f32>]) {
        mga_obs::span!("scaler.gaussrank.transform");
        for row in data {
            self.transform_row(row);
        }
    }

    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Export the fitted per-column (values, scores) tables.
    pub fn to_parts(&self) -> &[(Vec<f32>, Vec<f32>)] {
        &self.columns
    }

    /// Rebuild from exported tables.
    pub fn from_parts(columns: Vec<(Vec<f32>, Vec<f32>)>) -> GaussRankScaler {
        assert!(!columns.is_empty());
        GaussRankScaler { columns }
    }
}

/// Piecewise-linear interpolation of `x` in the (sorted) `xs` → `ys` table,
/// clamping outside the fitted range.
fn interp(xs: &[f32], ys: &[f32], x: f32) -> f32 {
    match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
        Ok(i) => ys[i],
        Err(0) => ys[0],
        Err(i) if i >= xs.len() => *ys.last().unwrap(),
        Err(i) => {
            let (x0, x1) = (xs[i - 1], xs[i]);
            let (y0, y1) = (ys[i - 1], ys[i]);
            if x1 == x0 {
                y0
            } else {
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
        }
    }
}

/// Min-max scaler to `[0, 1]`, fitted per column. Constant columns map
/// to 0.5.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl MinMaxScaler {
    pub fn fit(data: &[Vec<f32>], dims: usize) -> MinMaxScaler {
        mga_obs::span!("scaler.minmax.fit");
        assert!(!data.is_empty(), "cannot fit scaler on empty data");
        let mut mins = vec![f32::INFINITY; dims];
        let mut maxs = vec![f32::NEG_INFINITY; dims];
        for row in data {
            for c in 0..dims {
                mins[c] = mins[c].min(row[c]);
                maxs[c] = maxs[c].max(row[c]);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Transform one sample in place, clamping to `[0, 1]`.
    pub fn transform_row(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.mins.len(), "dimension mismatch");
        for (c, x) in row.iter_mut().enumerate() {
            let span = self.maxs[c] - self.mins[c];
            *x = if span <= 0.0 {
                0.5
            } else {
                ((*x - self.mins[c]) / span).clamp(0.0, 1.0)
            };
        }
    }

    pub fn transform(&self, data: &mut [Vec<f32>]) {
        mga_obs::span!("scaler.minmax.transform");
        for row in data {
            self.transform_row(row);
        }
    }

    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Export the fitted (mins, maxs).
    pub fn to_parts(&self) -> (&[f32], &[f32]) {
        (&self.mins, &self.maxs)
    }

    /// Rebuild from exported bounds.
    pub fn from_parts(mins: Vec<f32>, maxs: Vec<f32>) -> MinMaxScaler {
        assert_eq!(mins.len(), maxs.len());
        MinMaxScaler { mins, maxs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413447) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn probit_is_antisymmetric() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            let a = inverse_normal_cdf(p);
            let b = inverse_normal_cdf(1.0 - p);
            assert!((a + b).abs() < 1e-7, "asymmetric at {p}");
        }
    }

    #[test]
    #[should_panic(expected = "probit domain")]
    fn probit_rejects_out_of_domain() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn gauss_rank_produces_normalish_column() {
        // Heavily skewed input.
        let data: Vec<Vec<f32>> = (0..101).map(|i| vec![(i as f32).exp2() % 977.0]).collect();
        let s = GaussRankScaler::fit(&data, 1);
        let mut transformed = data.clone();
        s.transform(&mut transformed);
        let vals: Vec<f32> = transformed.iter().map(|r| r[0]).collect();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
        assert!(mean.abs() < 0.2, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.35, "variance {var} too far from 1");
    }

    #[test]
    fn gauss_rank_is_monotone() {
        let data: Vec<Vec<f32>> = vec![vec![1.0], vec![5.0], vec![2.0], vec![100.0], vec![3.0]];
        let s = GaussRankScaler::fit(&data, 1);
        let mut a = [1.5f32];
        let mut b = [4.0f32];
        s.transform_row(&mut a);
        s.transform_row(&mut b);
        assert!(a[0] < b[0], "monotonicity violated");
    }

    #[test]
    fn gauss_rank_clamps_out_of_range() {
        let data: Vec<Vec<f32>> = vec![vec![0.0], vec![1.0], vec![2.0]];
        let s = GaussRankScaler::fit(&data, 1);
        let mut lo = [-100.0f32];
        let mut hi = [100.0f32];
        s.transform_row(&mut lo);
        s.transform_row(&mut hi);
        let mut min = [0.0f32];
        let mut max = [2.0f32];
        s.transform_row(&mut min);
        s.transform_row(&mut max);
        assert_eq!(lo[0], min[0]);
        assert_eq!(hi[0], max[0]);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let data = vec![vec![10.0, -5.0], vec![20.0, 5.0], vec![15.0, 0.0]];
        let s = MinMaxScaler::fit(&data, 2);
        let mut mid = vec![15.0, 0.0];
        s.transform_row(&mut mid);
        assert!((mid[0] - 0.5).abs() < 1e-6);
        assert!((mid[1] - 0.5).abs() < 1e-6);
        let mut out_of_range = vec![100.0, -100.0];
        s.transform_row(&mut out_of_range);
        assert_eq!(out_of_range, vec![1.0, 0.0]);
    }

    #[test]
    fn minmax_constant_column_maps_to_half() {
        let data = vec![vec![7.0], vec![7.0]];
        let s = MinMaxScaler::fit(&data, 1);
        let mut row = vec![7.0];
        s.transform_row(&mut row);
        assert_eq!(row[0], 0.5);
    }
}
