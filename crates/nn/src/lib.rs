//! `mga-nn` — a from-scratch neural-network substrate.
//!
//! The paper builds its models with PyTorch and PyTorch Geometric. No
//! comparable Rust stack exists (the calibration note's "heavy
//! reimplementation"), so this crate provides exactly the pieces the MGA
//! pipeline needs:
//!
//! * [`tensor::Tensor`] — a dense row-major f32 tensor with blocked,
//!   thread-parallel matrix multiplication,
//! * [`pool`] — the persistent worker pool behind every parallel kernel
//!   (sized by `available_parallelism`, overridable with `MGA_THREADS`;
//!   all kernels are bitwise deterministic across thread counts),
//! * [`tape`] — reverse-mode automatic differentiation over an explicit
//!   op tape, including the `gather`/`scatter` segment ops that make
//!   message passing and whole-graph readout differentiable,
//! * [`segment`] — the parallel gather/scatter row kernels those ops and
//!   their backward passes share,
//! * [`arena`] — the size-class buffer free list behind the tape's
//!   reset-and-replay memory plan (steady-state epochs allocate nothing),
//! * [`aligned`] — the 64-byte-aligned `f32` buffers every tape/arena/
//!   plan allocation is backed by (the microkernel alignment contract),
//! * [`simd`] — register-blocked AVX2 microkernels with a bitwise-
//!   identical scalar fallback and per-shape dispatch (`MGA_SIMD=0`
//!   kill switch),
//! * [`spsc`] — bounded lock-free single-producer/single-consumer rings
//!   (cache-line-padded cursors; the serving cluster's per-shard
//!   intake/response channels),
//! * [`quant`] — bf16 and int8 weight quantization for frozen inference
//!   plans,
//! * [`ew`] — chunked elementwise kernels the tape's fused forward and
//!   in-place backward passes are built from,
//! * [`params`] — parameter storage shared between layers and optimizers,
//! * [`layers`] — `Linear`, `Mlp` and the `GruCell` used by gated graph
//!   networks,
//! * [`optim`] — SGD with momentum and the AdamW optimizer the paper
//!   trains with,
//! * [`init`] — seeded Xavier/Kaiming initializers, and
//! * [`scaler`] — the Gaussian-rank scaler the paper applies before the
//!   denoising autoencoder, plus min-max scaling for performance counters.
//!
//! Everything is deterministic given a seed; gradients are validated
//! against finite differences in the test suite.

pub mod aligned;
pub mod arena;
pub mod ew;
pub mod infer;
pub mod init;
pub mod layers;
pub mod optim;
pub mod params;
pub mod pool;
pub mod quant;
pub mod scaler;
pub mod segment;
pub mod simd;
pub mod spsc;
pub mod tape;
pub mod tensor;

pub use params::{GradShard, GradShards, ParamId, ParamSet};
pub use tape::{FusedAct, Tape, Var};
pub use tensor::Tensor;
