//! Quantized weight formats for frozen inference plans.
//!
//! Two shrink levels for `InferencePlan` stage weights, both decoded on
//! the fly inside the fused-linear kernel (activations and accumulators
//! stay f32 throughout, so only the weight *representation* is lossy):
//!
//! * [`Bf16Weights`] — bfloat16 (top 16 bits of the f32, round to
//!   nearest even). Halves weight memory; ~3 decimal digits of mantissa.
//! * [`Int8Weights`] — signed 8-bit integers with one f32 scale per
//!   output feature (weight-matrix column), chosen symmetric so
//!   `q * scale ≈ w` with `|q| ≤ 127`. Quarters weight memory.
//!
//! Quantized plans are *optional* and gated: the serving layer only
//! ships one after verifying exact argmax agreement with the f32 plan
//! on held-out folds (see `mga-serve` / `serve_bench`). Nothing in the
//! training path touches this module.

use crate::infer;
use crate::tape::FusedAct;
use crate::tensor::Tensor;

/// Round an `f32` to bfloat16 (round to nearest, ties to even).
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep NaNs NaN: force a mantissa bit so truncation can't
        // produce an infinity.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7FFF + ((bits >> 16) & 1);
    (bits.wrapping_add(round) >> 16) as u16
}

/// Widen a bfloat16 back to `f32` (exact).
#[inline]
pub fn bf16_to_f32(u: u16) -> f32 {
    f32::from_bits((u as u32) << 16)
}

/// A `k × n` weight matrix stored as bfloat16.
pub struct Bf16Weights {
    data: Vec<u16>,
    rows: usize,
    cols: usize,
}

impl Bf16Weights {
    /// Quantize a weight tensor (row-major `k × n`).
    pub fn quantize(w: &Tensor) -> Bf16Weights {
        let (rows, cols) = w.shape();
        Bf16Weights {
            data: w.data().iter().map(|&v| f32_to_bf16(v)).collect(),
            rows,
            cols,
        }
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Weight storage in bytes (for compile-time stats).
    pub fn weight_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u16>()
    }
}

/// A `k × n` weight matrix stored as int8 with one symmetric f32 scale
/// per output feature (column `j`): `w[i][j] ≈ data[i][j] * scales[j]`.
pub struct Int8Weights {
    data: Vec<i8>,
    scales: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Int8Weights {
    /// Calibrate per-column scales from the weight extrema and quantize.
    pub fn quantize(w: &Tensor) -> Int8Weights {
        let (rows, cols) = w.shape();
        let d = w.data();
        let mut scales = vec![0.0f32; cols];
        for row in d.chunks_exact(cols.max(1)) {
            for (s, &v) in scales.iter_mut().zip(row) {
                *s = s.max(v.abs());
            }
        }
        for s in &mut scales {
            // All-zero columns get scale 1 so dequantization stays finite.
            *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
        }
        let data = d
            .iter()
            .enumerate()
            .map(|(idx, &v)| (v / scales[idx % cols]).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Int8Weights {
            data,
            scales,
            rows,
            cols,
        }
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Per-output-feature dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Weight + scale storage in bytes (for compile-time stats).
    pub fn weight_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }
}

/// `out = act(x · dequant(w) + b)` with bf16 weights decoded inside the
/// inner loop — same i-k-j accumulation order and zero-skip as the f32
/// fused-linear kernel, so the only difference from the f32 path is the
/// weight rounding itself.
pub fn fused_linear_bf16_into(
    out: &mut [f32],
    x: &[f32],
    rows: usize,
    w: &Bf16Weights,
    b: &Tensor,
    act: FusedAct,
) {
    let (k, n) = (w.rows, w.cols);
    debug_assert_eq!(x.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert_eq!(b.shape(), (1, n));
    out.fill(0.0);
    for i in 0..rows {
        let xrow = &x[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &xv) in xrow.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let wrow = &w.data[kk * n..(kk + 1) * n];
            for (o, &wv) in orow.iter_mut().zip(wrow) {
                *o += xv * bf16_to_f32(wv);
            }
        }
    }
    infer::apply_bias_act(out, b.row_slice(0), act);
}

/// `out = act((x · q) * scale + b)` with int8 weights: products
/// accumulate in f32 against the raw integer codes, and each output
/// feature is rescaled once at the end — one multiply per output instead
/// of one per product.
pub fn fused_linear_int8_into(
    out: &mut [f32],
    x: &[f32],
    rows: usize,
    w: &Int8Weights,
    b: &Tensor,
    act: FusedAct,
) {
    let (k, n) = (w.rows, w.cols);
    debug_assert_eq!(x.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert_eq!(b.shape(), (1, n));
    out.fill(0.0);
    for i in 0..rows {
        let xrow = &x[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &xv) in xrow.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let wrow = &w.data[kk * n..(kk + 1) * n];
            for (o, &q) in orow.iter_mut().zip(wrow) {
                *o += xv * q as f32;
            }
        }
        for (o, &s) in orow.iter_mut().zip(&w.scales) {
            *o *= s;
        }
    }
    infer::apply_bias_act(out, b.row_slice(0), act);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bf16_round_trips_exactly_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -2.5, 0.15625, f32::INFINITY] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)).to_bits(), v.to_bits());
        }
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-9 is exactly halfway between bf16(1.0) and the next
        // representable value; ties-to-even keeps the even mantissa.
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(f32_to_bf16(halfway), 0x3F80);
        // Just above halfway rounds up.
        assert_eq!(f32_to_bf16(f32::from_bits(0x3F80_8001)), 0x3F81);
    }

    #[test]
    fn bf16_error_is_bounded_by_relative_epsilon() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-100.0f32..100.0);
            let err = (bf16_to_f32(f32_to_bf16(v)) - v).abs();
            assert!(err <= v.abs() * (1.0 / 256.0), "v={v} err={err}");
        }
    }

    #[test]
    fn int8_dequant_error_is_within_half_step() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Tensor::from_vec(7, 5, (0..35).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let q = Int8Weights::quantize(&w);
        for i in 0..7 {
            for j in 0..5 {
                let got = q.data[i * 5 + j] as f32 * q.scales[j];
                let want = w.data()[i * 5 + j];
                assert!(
                    (got - want).abs() <= q.scales[j] * 0.5 + 1e-7,
                    "({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn int8_zero_column_stays_zero() {
        let w = Tensor::from_vec(3, 2, vec![0.0, 1.0, 0.0, -1.0, 0.0, 0.5]);
        let q = Int8Weights::quantize(&w);
        assert_eq!(q.scales()[0], 1.0);
        assert!(q.data.iter().step_by(2).all(|&v| v == 0));
    }

    #[test]
    fn quantized_kernels_approximate_f32_kernel() {
        let mut rng = StdRng::seed_from_u64(5);
        let (rows, k, n) = (4, 12, 9);
        let x: Vec<f32> = (0..rows * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let w = Tensor::from_vec(
            k,
            n,
            (0..k * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let b = Tensor::from_vec(1, n, (0..n).map(|_| rng.gen_range(-0.5f32..0.5)).collect());

        let mut exact = vec![0.0f32; rows * n];
        infer::fused_linear_into(&mut exact, &x, rows, &w, &b, FusedAct::Tanh);

        let mut got = vec![0.0f32; rows * n];
        fused_linear_bf16_into(
            &mut got,
            &x,
            rows,
            &Bf16Weights::quantize(&w),
            &b,
            FusedAct::Tanh,
        );
        for (g, e) in got.iter().zip(&exact) {
            assert!((g - e).abs() < 0.05, "bf16 {g} vs {e}");
        }

        fused_linear_int8_into(
            &mut got,
            &x,
            rows,
            &Int8Weights::quantize(&w),
            &b,
            FusedAct::Tanh,
        );
        for (g, e) in got.iter().zip(&exact) {
            assert!((g - e).abs() < 0.1, "int8 {g} vs {e}");
        }
    }
}
