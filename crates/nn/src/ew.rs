//! Chunked elementwise kernels for tape forward/backward passes.
//!
//! These replace the per-element closure dispatch of `Tensor::map`/`zip`
//! with slice loops over fixed-width chunks, which LLVM autovectorizes
//! (and unrolls even for non-vectorizable transcendentals). Semantics
//! are exactly scalar `f32`: each output element is produced by the same
//! single-expression computation as the old iterator path, in the same
//! order, so results are bit-identical.

const CHUNK: usize = 8;

/// `dst[i] = f(a[i])`, fully overwriting `dst`.
#[inline]
pub fn map1_to(dst: &mut [f32], a: &[f32], f: impl Fn(f32) -> f32) {
    debug_assert_eq!(dst.len(), a.len());
    let mut dc = dst.chunks_exact_mut(CHUNK);
    let mut ac = a.chunks_exact(CHUNK);
    for (d, s) in (&mut dc).zip(&mut ac) {
        for i in 0..CHUNK {
            d[i] = f(s[i]);
        }
    }
    for (d, s) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
        *d = f(*s);
    }
}

/// `dst[i] += f(a[i])`. Bitwise-safe even when `dst` aliases the grad
/// being accumulated: each element adds exactly one product, the same
/// rounding as the old materialize-then-`add_assign` path.
#[inline]
pub fn map1_acc(dst: &mut [f32], a: &[f32], f: impl Fn(f32) -> f32) {
    debug_assert_eq!(dst.len(), a.len());
    let mut dc = dst.chunks_exact_mut(CHUNK);
    let mut ac = a.chunks_exact(CHUNK);
    for (d, s) in (&mut dc).zip(&mut ac) {
        for i in 0..CHUNK {
            d[i] += f(s[i]);
        }
    }
    for (d, s) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
        *d += f(*s);
    }
}

/// `dst[i] = f(a[i], b[i])`, fully overwriting `dst`.
#[inline]
pub fn map2_to(dst: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let mut dc = dst.chunks_exact_mut(CHUNK);
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    for ((d, s), t) in (&mut dc).zip(&mut ac).zip(&mut bc) {
        for i in 0..CHUNK {
            d[i] = f(s[i], t[i]);
        }
    }
    for ((d, s), t) in dc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d = f(*s, *t);
    }
}

/// `dst[i] += f(a[i], b[i])` (one product per element; see [`map1_acc`]).
#[inline]
pub fn map2_acc(dst: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let mut dc = dst.chunks_exact_mut(CHUNK);
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    for ((d, s), t) in (&mut dc).zip(&mut ac).zip(&mut bc) {
        for i in 0..CHUNK {
            d[i] += f(s[i], t[i]);
        }
    }
    for ((d, s), t) in dc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d += f(*s, *t);
    }
}

/// Row-broadcast bias + activation: for each row of `dst` (row length =
/// `bias.len()`), `dst[r][j] = f(dst[r][j] + bias[j])`. The inner `+` is
/// its own rounding step, matching the unfused `add_bias` op, and `f`
/// then matches the separate activation op.
#[inline]
pub fn bias_act(dst: &mut [f32], bias: &[f32], f: impl Fn(f32) -> f32) {
    debug_assert!(bias.is_empty() || dst.len().is_multiple_of(bias.len()));
    for row in dst.chunks_exact_mut(bias.len().max(1)) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o = f(*o + b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_match_scalar_loops() {
        let a: Vec<f32> = (0..19).map(|i| (i as f32) * 0.37 - 3.0).collect();
        let b: Vec<f32> = (0..19).map(|i| (i as f32).sin()).collect();
        let mut d = vec![0.5f32; 19];
        map1_to(&mut d, &a, |x| x.tanh());
        for (o, x) in d.iter().zip(&a) {
            assert_eq!(o.to_bits(), x.tanh().to_bits());
        }
        let mut acc = b.clone();
        map1_acc(&mut acc, &a, |x| x * 2.0);
        for ((o, x), y) in acc.iter().zip(&a).zip(&b) {
            assert_eq!(o.to_bits(), (y + x * 2.0).to_bits());
        }
        let mut d2 = vec![0.0f32; 19];
        map2_to(&mut d2, &a, &b, |x, y| x * y);
        for ((o, x), y) in d2.iter().zip(&a).zip(&b) {
            assert_eq!(o.to_bits(), (x * y).to_bits());
        }
        let mut acc2 = a.clone();
        map2_acc(&mut acc2, &a, &b, |x, y| x - y);
        for ((o, x), y) in acc2.iter().zip(&a).zip(&b) {
            assert_eq!(o.to_bits(), (x + (x - y)).to_bits());
        }
    }

    #[test]
    fn bias_act_matches_two_pass() {
        let bias = [0.1f32, -0.2, 0.3];
        let mut d: Vec<f32> = (0..12).map(|i| (i as f32) * 0.21 - 1.0).collect();
        let expect: Vec<f32> = d
            .chunks(3)
            .flat_map(|row| row.iter().zip(&bias).map(|(x, b)| (x + b).max(0.0)))
            .collect();
        bias_act(&mut d, &bias, |z| z.max(0.0));
        for (o, e) in d.iter().zip(&expect) {
            assert_eq!(o.to_bits(), e.to_bits());
        }
    }
}
