//! A persistent worker pool for the numeric kernels.
//!
//! The previous implementation spawned OS threads inside every large
//! matmul (`crossbeam::thread::scope`), paying thread creation and
//! teardown on the hot path of every training epoch. This module keeps a
//! single process-wide set of workers alive and hands them chunked
//! fork-join jobs over borrowed data.
//!
//! Sizing: `std::thread::available_parallelism`, overridable with the
//! `MGA_THREADS` environment variable (read once, at first use).
//! `MGA_THREADS=1` disables the workers entirely — every kernel then
//! runs its plain sequential path on the calling thread.
//!
//! Determinism: chunk *scheduling* is racy, but every kernel built on
//! [`parallel_for`] partitions its output into disjoint chunks whose
//! per-chunk arithmetic (including accumulation order) is identical to
//! the sequential path, so results are bitwise identical regardless of
//! thread count. The property tests in `tests/parallel_parity.rs` hold
//! this invariant down.
//!
//! Nesting: jobs may submit jobs (fold-level parallelism over training
//! folds whose matmuls also parallelize). The calling thread always
//! participates in draining its own job's chunks, so a fully busy pool
//! degrades to sequential execution instead of deadlocking.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Raw pointer wrapper asserting cross-thread use is safe because every
/// chunk touches a disjoint region. Construction is safe; dereferencing
/// is the caller's `unsafe` obligation. The field is private so closures
/// capture the whole (Sync) wrapper, not the bare pointer.
#[derive(Clone, Copy)]
pub struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub fn new(p: *mut T) -> SendPtr<T> {
        SendPtr(p)
    }

    pub fn get(&self) -> *mut T {
        self.0
    }
}

/// One fork-join job: `count` chunks drained via an atomic cursor.
struct Job {
    /// Borrow of the caller's closure; valid until `remaining` hits zero,
    /// which `parallel_for` blocks on before returning.
    task: TaskPtr,
    next: AtomicUsize,
    count: usize,
    remaining: AtomicUsize,
    poisoned: AtomicBool,
    done: Mutex<bool>,
    cv: Condvar,
}

#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

impl Job {
    /// Drain chunks until the cursor runs out. Called by workers and by
    /// the submitting thread alike.
    fn run_chunks(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                return;
            }
            let task = unsafe { &*self.task.0 };
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                self.poisoned.store(true, Ordering::Relaxed);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().unwrap() = true;
                self.cv.notify_all();
            }
        }
    }
}

struct Pool {
    senders: Vec<Sender<Arc<Job>>>,
    /// Total usable compute threads (workers + the calling thread).
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("MGA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("MGA_THREADS={v:?} is not a positive integer; using the default");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let workers = threads.saturating_sub(1);
        let mut senders = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Arc<Job>>();
            std::thread::Builder::new()
                .name(format!("mga-pool-{w}"))
                .spawn(move || {
                    // Exits when the Sender side is dropped (process end).
                    for job in rx.iter() {
                        job.run_chunks();
                    }
                })
                .expect("failed to spawn mga pool worker");
            senders.push(tx);
        }
        Pool {
            senders,
            threads: workers + 1,
        }
    })
}

/// Number of compute threads kernels may fan out across (≥ 1, includes
/// the calling thread).
pub fn num_threads() -> usize {
    pool().threads
}

/// Run `task(0) … task(count-1)` across the pool, blocking until all
/// chunks complete. The calling thread participates, so this is safe to
/// call from inside another `parallel_for` task.
///
/// `task` must be safe to call concurrently for distinct indices
/// (chunks must write disjoint data).
pub fn parallel_for(count: usize, task: impl Fn(usize) + Sync) {
    if count == 0 {
        return;
    }
    let p = pool();
    if p.senders.is_empty() || count == 1 {
        for i in 0..count {
            task(i);
        }
        return;
    }
    let task_ref: &(dyn Fn(usize) + Sync) = &task;
    // Erase the borrow lifetime; the blocking wait below keeps the
    // closure alive past the last chunk.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task_ref)
    };
    let job = Arc::new(Job {
        task: TaskPtr(task_static as *const (dyn Fn(usize) + Sync)),
        next: AtomicUsize::new(0),
        count,
        remaining: AtomicUsize::new(count),
        poisoned: AtomicBool::new(false),
        done: Mutex::new(false),
        cv: Condvar::new(),
    });
    for tx in &p.senders {
        // A send can only fail if a worker died mid-process; losing its
        // help is acceptable, losing the job is not — the caller drains.
        let _ = tx.send(job.clone());
    }
    job.run_chunks();
    let mut done = job.done.lock().unwrap();
    while !*done {
        done = job.cv.wait(done).unwrap();
    }
    drop(done);
    if job.poisoned.load(Ordering::Relaxed) {
        panic!("a parallel_for task panicked");
    }
}

/// Split `0..len` into at most [`num_threads`] contiguous chunks and run
/// `task(chunk_index, start, end)` for each non-empty chunk.
pub fn parallel_ranges(len: usize, task: impl Fn(usize, usize, usize) + Sync) {
    let chunks = num_threads().min(len.max(1));
    let per = len.div_ceil(chunks);
    parallel_for(chunks, |c| {
        let start = c * per;
        if start < len {
            task(c, start, (start + per).min(len));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_jobs_complete() {
        let total = AtomicUsize::new(0);
        parallel_for(8, |_| {
            parallel_for(16, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn ranges_partition_the_domain() {
        let len = 103;
        let seen: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        parallel_ranges(len, |_, lo, hi| {
            assert!(lo < hi && hi <= len);
            for s in &seen[lo..hi] {
                s.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_chunks_run_inline() {
        parallel_for(0, |_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        parallel_for(1, |i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_task_propagates_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err(), "panic in a chunk must surface");
        // The pool must still be usable afterwards.
        let n = AtomicUsize::new(0);
        parallel_for(32, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }
}
