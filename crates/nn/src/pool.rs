//! A persistent worker pool for the numeric kernels.
//!
//! The previous implementation spawned OS threads inside every large
//! matmul (`crossbeam::thread::scope`), paying thread creation and
//! teardown on the hot path of every training epoch. This module keeps a
//! single process-wide set of workers alive and hands them chunked
//! fork-join jobs over borrowed data.
//!
//! Sizing: `std::thread::available_parallelism`, overridable with the
//! `MGA_THREADS` environment variable (read once, at first use).
//! `MGA_THREADS=1` disables the workers entirely — every kernel then
//! runs its plain sequential path on the calling thread.
//!
//! Determinism: chunk *scheduling* is racy, but every kernel built on
//! [`parallel_for`] partitions its output into disjoint chunks whose
//! per-chunk arithmetic (including accumulation order) is identical to
//! the sequential path, so results are bitwise identical regardless of
//! thread count. The property tests in `tests/parallel_parity.rs` hold
//! this invariant down.
//!
//! Nesting: jobs may submit jobs (fold-level parallelism over training
//! folds whose matmuls also parallelize). The calling thread always
//! participates in draining its own job's chunks, so a fully busy pool
//! degrades to sequential execution instead of deadlocking.
//!
//! Observability: dispatch statistics (jobs, chunks, per-worker chunk
//! counts) accumulate in always-on relaxed atomics — see [`stats`] and
//! [`dump_stats_if_enabled`] (`MGA_POOL_STATS=1`). Pooled dispatches
//! also open an `mga_obs` span (`pool.dispatch`) and feed the
//! `pool.jobs` / `pool.chunks` counters plus the `pool.job_chunks` and
//! `pool.queue_wait_us` histograms in the metrics registry.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Raw pointer wrapper asserting cross-thread use is safe because every
/// chunk touches a disjoint region. Construction is safe; dereferencing
/// is the caller's `unsafe` obligation. The field is private so closures
/// capture the whole (Sync) wrapper, not the bare pointer.
#[derive(Clone, Copy)]
pub struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub fn new(p: *mut T) -> SendPtr<T> {
        SendPtr(p)
    }

    pub fn get(&self) -> *mut T {
        self.0
    }
}

/// One fork-join job: `count` chunks drained via an atomic cursor.
struct Job {
    /// Borrow of the caller's closure; valid until `remaining` hits zero,
    /// which `parallel_for` blocks on before returning.
    task: TaskPtr,
    next: AtomicUsize,
    count: usize,
    remaining: AtomicUsize,
    poisoned: AtomicBool,
    /// Chunks whose task body panicked.
    panics: AtomicU64,
    /// First panic observed: (chunk index, rendered payload). Later
    /// panics keep their count in `panics` but only the first is
    /// reported, matching how a sequential loop would have died.
    panic_info: Mutex<Option<(usize, String)>>,
    done: Mutex<bool>,
    cv: Condvar,
    /// Submission time, for the queue-wait histogram.
    created: Instant,
}

/// Render a panic payload for the report; panics almost always carry a
/// `&str` or `String` message.
fn payload_to_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

impl Job {
    /// Drain chunks until the cursor runs out; returns how many chunks
    /// this thread executed. Called by workers and by the submitting
    /// thread alike.
    fn run_chunks(&self) -> u64 {
        let mut executed = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                return executed;
            }
            // Fast-cancel: once any chunk has panicked the job's output
            // is unusable, so the rest of the cursor drains without
            // running task bodies (each still decrements `remaining` so
            // the submitter's wait completes).
            if !self.poisoned.load(Ordering::Relaxed) {
                let task = unsafe { &*self.task.0 };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                    if mga_obs::fault::armed() {
                        if let Some(shot) = mga_obs::fault::fire(mga_obs::fault::Site::Pool) {
                            panic!("injected pool fault ({:?})", shot.kind);
                        }
                    }
                    task(i)
                })) {
                    self.poisoned.store(true, Ordering::Relaxed);
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    let mut first = self.panic_info.lock().unwrap();
                    if first.is_none() {
                        *first = Some((i, payload_to_string(payload)));
                    }
                }
            }
            executed += 1;
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().unwrap() = true;
                self.cv.notify_all();
            }
        }
    }
}

/// Always-on dispatch counters, shared between the pool handle and the
/// worker threads.
struct PoolCounters {
    jobs_dispatched: AtomicU64,
    jobs_inline: AtomicU64,
    chunks_submitted: AtomicU64,
    chunks_inline: AtomicU64,
    caller_chunks: AtomicU64,
    task_panics: AtomicU64,
    worker_chunks: Vec<AtomicU64>,
}

impl PoolCounters {
    fn new(workers: usize) -> PoolCounters {
        PoolCounters {
            jobs_dispatched: AtomicU64::new(0),
            jobs_inline: AtomicU64::new(0),
            chunks_submitted: AtomicU64::new(0),
            chunks_inline: AtomicU64::new(0),
            caller_chunks: AtomicU64::new(0),
            task_panics: AtomicU64::new(0),
            worker_chunks: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

struct Pool {
    senders: Vec<Sender<Arc<Job>>>,
    /// Total usable compute threads (workers + the calling thread).
    threads: usize,
    counters: Arc<PoolCounters>,
    /// Registry handles, resolved once so the hot path pays one atomic
    /// add per update.
    m_jobs: &'static mga_obs::metrics::Counter,
    m_chunks: &'static mga_obs::metrics::Counter,
    m_task_panics: &'static mga_obs::metrics::Counter,
    m_job_chunks: &'static mga_obs::metrics::Histogram,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("MGA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        mga_obs::warn!("MGA_THREADS={v:?} is not a positive integer; using the default");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let workers = threads.saturating_sub(1);
        let counters = Arc::new(PoolCounters::new(workers));
        let queue_wait = mga_obs::metrics::histogram(
            "pool.queue_wait_us",
            &[1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0],
        );
        let mut senders = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Arc<Job>>();
            let counters = counters.clone();
            std::thread::Builder::new()
                .name(format!("mga-pool-{w}"))
                .spawn(move || {
                    // Exits when the Sender side is dropped (process end).
                    for job in rx.iter() {
                        queue_wait.observe(job.created.elapsed().as_secs_f64() * 1e6);
                        let n = job.run_chunks();
                        counters.worker_chunks[w].fetch_add(n, Ordering::Relaxed);
                    }
                })
                .expect("failed to spawn mga pool worker");
            senders.push(tx);
        }
        Pool {
            senders,
            threads: workers + 1,
            counters,
            m_jobs: mga_obs::metrics::counter("pool.jobs"),
            m_chunks: mga_obs::metrics::counter("pool.chunks"),
            m_task_panics: mga_obs::metrics::counter("pool.task_panics"),
            m_job_chunks: mga_obs::metrics::histogram(
                "pool.job_chunks",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
        }
    })
}

/// Number of compute threads kernels may fan out across (≥ 1, includes
/// the calling thread).
pub fn num_threads() -> usize {
    pool().threads
}

thread_local! {
    /// When set, `parallel_for` on this thread runs its chunks inline
    /// instead of dispatching — see [`inline_scope`].
    static FORCE_INLINE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when the current thread is inside an [`inline_scope`].
pub fn inline_forced() -> bool {
    FORCE_INLINE.with(|c| c.get())
}

/// Run `f` with every `parallel_for` on this thread forced onto the
/// inline (sequential) path.
///
/// This is the nesting bound for layered parallelism: an outer region
/// that already saturates the pool (fold-level CV, the data-parallel
/// epoch's micro-batches) wraps its per-chunk body in `inline_scope` so
/// the tape kernels inside don't fan out again — nested dispatch would
/// only add queue traffic and cross-chunk cache pressure, since every
/// pool thread is already busy. The flag is per-thread and restored on
/// exit (including panic unwinds), so sibling threads and code after the
/// scope still dispatch normally. Inline chunks keep the exact same
/// fault-injection site and panic reporting as dispatched ones, and each
/// kernel's per-chunk arithmetic is order-identical either way, so
/// forcing inline never changes results — only scheduling.
pub fn inline_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_INLINE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCE_INLINE.with(|c| c.replace(true)));
    f()
}

/// Run `task(0) … task(count-1)` across the pool, blocking until all
/// chunks complete. The calling thread participates, so this is safe to
/// call from inside another `parallel_for` task.
///
/// `task` must be safe to call concurrently for distinct indices
/// (chunks must write disjoint data).
pub fn parallel_for(count: usize, task: impl Fn(usize) + Sync) {
    if count == 0 {
        return;
    }
    let p = pool();
    p.m_jobs.inc();
    p.m_chunks.add(count as u64);
    p.m_job_chunks.observe(count as f64);
    if p.senders.is_empty() || count == 1 || inline_forced() {
        p.counters.jobs_inline.fetch_add(1, Ordering::Relaxed);
        p.counters
            .chunks_inline
            .fetch_add(count as u64, Ordering::Relaxed);
        for i in 0..count {
            // Same fault-injection site and panic reporting as the
            // dispatched path, so single-threaded runs exercise the
            // identical failure surface.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                if mga_obs::fault::armed() {
                    if let Some(shot) = mga_obs::fault::fire(mga_obs::fault::Site::Pool) {
                        panic!("injected pool fault ({:?})", shot.kind);
                    }
                }
                task(i)
            })) {
                p.counters.task_panics.fetch_add(1, Ordering::Relaxed);
                p.m_task_panics.inc();
                let msg = payload_to_string(payload);
                mga_obs::error!("parallel_for: inline chunk {i} of {count} panicked: {msg}");
                panic!(
                    "parallel_for: task for chunk {i}/{count} panicked (1 chunk(s) total): {msg}"
                );
            }
        }
        return;
    }
    mga_obs::span!("pool.dispatch");
    p.counters.jobs_dispatched.fetch_add(1, Ordering::Relaxed);
    p.counters
        .chunks_submitted
        .fetch_add(count as u64, Ordering::Relaxed);
    let task_ref: &(dyn Fn(usize) + Sync) = &task;
    // Erase the borrow lifetime; the blocking wait below keeps the
    // closure alive past the last chunk.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task_ref)
    };
    let job = Arc::new(Job {
        task: TaskPtr(task_static as *const (dyn Fn(usize) + Sync)),
        next: AtomicUsize::new(0),
        count,
        remaining: AtomicUsize::new(count),
        poisoned: AtomicBool::new(false),
        panics: AtomicU64::new(0),
        panic_info: Mutex::new(None),
        done: Mutex::new(false),
        cv: Condvar::new(),
        created: Instant::now(),
    });
    // The caller takes one chunk itself, so at most `count - 1` workers
    // can ever claim work — waking the rest just costs a futile wakeup
    // and an extra Arc round-trip on small jobs.
    for tx in p.senders.iter().take(count.saturating_sub(1)) {
        // A send can only fail if a worker died mid-process; losing its
        // help is acceptable, losing the job is not — the caller drains.
        let _ = tx.send(job.clone());
    }
    let mine = job.run_chunks();
    p.counters.caller_chunks.fetch_add(mine, Ordering::Relaxed);
    let mut done = job.done.lock().unwrap();
    while !*done {
        done = job.cv.wait(done).unwrap();
    }
    drop(done);
    if job.poisoned.load(Ordering::Relaxed) {
        let n = job.panics.load(Ordering::Relaxed);
        p.counters.task_panics.fetch_add(n, Ordering::Relaxed);
        p.m_task_panics.add(n);
        let first = job.panic_info.lock().unwrap().take();
        let (chunk, msg) =
            first.unwrap_or_else(|| (usize::MAX, "<panic payload lost>".to_string()));
        mga_obs::error!(
            "parallel_for: {n} of {} chunks panicked; first at chunk {chunk}: {msg}",
            job.count
        );
        panic!(
            "parallel_for: task for chunk {chunk}/{} panicked ({n} chunk(s) total): {msg}",
            job.count
        );
    }
}

/// Split `0..len` into at most [`num_threads`] contiguous chunks and run
/// `task(chunk_index, start, end)` for each non-empty chunk.
pub fn parallel_ranges(len: usize, task: impl Fn(usize, usize, usize) + Sync) {
    let chunks = num_threads().min(len.max(1));
    let per = len.div_ceil(chunks);
    parallel_for(chunks, |c| {
        let start = c * per;
        if start < len {
            task(c, start, (start + per).min(len));
        }
    });
}

// ---------------------------------------------------------------------
// Dispatch statistics.
// ---------------------------------------------------------------------

/// Point-in-time snapshot of the pool's dispatch counters.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Compute threads (workers + caller).
    pub threads: usize,
    /// `parallel_for` calls fanned out to the workers.
    pub jobs_dispatched: u64,
    /// `parallel_for` calls run sequentially (single chunk or no workers).
    pub jobs_inline: u64,
    /// Chunks submitted to pooled jobs.
    pub chunks_submitted: u64,
    /// Chunks run on the inline (sequential) path.
    pub chunks_inline: u64,
    /// Pooled chunks executed by submitting threads (includes nested
    /// jobs drained by workers that submitted them).
    pub caller_chunks: u64,
    /// Task bodies that panicked inside pooled jobs (each also surfaces
    /// as a `parallel_for` panic on the submitting thread).
    pub task_panics: u64,
    /// Pooled chunks executed by each worker, indexed by worker.
    pub worker_chunks: Vec<u64>,
}

impl PoolStats {
    /// Pooled chunks executed so far, across workers and callers. Equals
    /// [`PoolStats::chunks_submitted`] whenever the pool is quiescent.
    pub fn executed_total(&self) -> u64 {
        self.caller_chunks + self.worker_chunks.iter().sum::<u64>()
    }

    /// Max-over-mean of per-executor chunk counts (workers plus the
    /// caller slot); 1.0 is perfectly balanced, 0.0 means no pooled work.
    pub fn imbalance_ratio(&self) -> f64 {
        let mut slots = self.worker_chunks.clone();
        slots.push(self.caller_chunks);
        let max = slots.iter().copied().max().unwrap_or(0) as f64;
        let mean = slots.iter().sum::<u64>() as f64 / slots.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    }
}

/// Snapshot the pool's dispatch counters (always collected).
pub fn stats() -> PoolStats {
    let p = pool();
    let c = &p.counters;
    PoolStats {
        threads: p.threads,
        jobs_dispatched: c.jobs_dispatched.load(Ordering::Relaxed),
        jobs_inline: c.jobs_inline.load(Ordering::Relaxed),
        chunks_submitted: c.chunks_submitted.load(Ordering::Relaxed),
        chunks_inline: c.chunks_inline.load(Ordering::Relaxed),
        caller_chunks: c.caller_chunks.load(Ordering::Relaxed),
        task_panics: c.task_panics.load(Ordering::Relaxed),
        worker_chunks: c
            .worker_chunks
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect(),
    }
}

/// Render the dispatch statistics as a small stderr-friendly table.
pub fn render_stats() -> String {
    let s = stats();
    let mut out = String::new();
    out.push_str(&format!(
        "pool: threads={} jobs={} (+{} inline) chunks={} (+{} inline) imbalance={:.2} panics={}\n",
        s.threads,
        s.jobs_dispatched,
        s.jobs_inline,
        s.chunks_submitted,
        s.chunks_inline,
        s.imbalance_ratio(),
        s.task_panics,
    ));
    out.push_str(&format!("  caller chunks: {}\n", s.caller_chunks));
    for (w, n) in s.worker_chunks.iter().enumerate() {
        out.push_str(&format!("  worker {w} chunks: {n}\n"));
    }
    out
}

/// If `MGA_POOL_STATS=1` (or `true`), print [`render_stats`] to stderr.
/// Experiment binaries call this once at exit.
pub fn dump_stats_if_enabled() {
    match std::env::var("MGA_POOL_STATS") {
        Ok(v) if v.trim() == "1" || v.trim().eq_ignore_ascii_case("true") => {
            eprint!("{}", render_stats());
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_jobs_complete() {
        let total = AtomicUsize::new(0);
        parallel_for(8, |_| {
            parallel_for(16, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn ranges_partition_the_domain() {
        let len = 103;
        let seen: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        parallel_ranges(len, |_, lo, hi| {
            assert!(lo < hi && hi <= len);
            for s in &seen[lo..hi] {
                s.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_chunks_run_inline() {
        parallel_for(0, |_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        parallel_for(1, |i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_task_propagates_without_deadlock() {
        let before = stats().task_panics;
        let result = std::panic::catch_unwind(|| {
            parallel_for(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        });
        let err = result.expect_err("panic in a chunk must surface");
        // The report names the failing chunk and carries the payload
        // (unless the pool ran without workers, where the inline path
        // propagates the original panic unchanged).
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        if num_threads() > 1 {
            assert!(
                msg.contains("chunk 13/64") && msg.contains("boom"),
                "panic report must name the chunk and payload: {msg}"
            );
            assert!(stats().task_panics > before, "task_panics must count");
            assert!(mga_obs::metrics::counter("pool.task_panics").get() > 0);
        } else {
            assert!(msg.contains("boom"), "inline path keeps the payload: {msg}");
        }
        // The pool must still be usable afterwards.
        let n = AtomicUsize::new(0);
        parallel_for(32, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 32);
    }

    /// The nested-parallelism bound: an outer job whose chunks enter
    /// `inline_scope` must complete all inner work sequentially on the
    /// owning thread, while threads outside the scope are unaffected.
    #[test]
    fn inline_scope_bounds_nested_parallelism() {
        let before = stats();
        let total = AtomicUsize::new(0);
        parallel_for(8, |_| {
            inline_scope(|| {
                assert!(inline_forced());
                parallel_for(16, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
                // Deeper nesting stays inline too.
                parallel_for(4, |_| {
                    assert!(inline_forced());
                });
            });
            assert!(!inline_forced(), "flag restored after the scope");
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
        // All 8 * (16 + 4) inner chunks took the inline path. Counters
        // are process-global, so only a lower bound is assertable.
        let after = stats();
        assert!(after.chunks_inline - before.chunks_inline >= 8 * 20);
    }

    #[test]
    fn inline_scope_restores_flag_on_panic() {
        let result = std::panic::catch_unwind(|| {
            inline_scope(|| panic!("boom"));
        });
        assert!(result.is_err());
        assert!(!inline_forced(), "unwind must restore the flag");
        assert_eq!(inline_scope(|| 7), 7);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn stats_are_consistent_with_submitted_work() {
        let before = stats();
        let n = 64u64;
        parallel_for(n as usize, |_| {
            std::hint::black_box(0u64);
        });
        // Counters are process-global and other tests run concurrently,
        // so poll for an instant where (a) our submission is visible and
        // (b) the pool is quiescent (everything submitted has executed).
        let mut consistent = false;
        for _ in 0..400 {
            let s = stats();
            let submitted_delta = (s.chunks_submitted + s.chunks_inline)
                - (before.chunks_submitted + before.chunks_inline);
            let jobs_delta =
                (s.jobs_dispatched + s.jobs_inline) - (before.jobs_dispatched + before.jobs_inline);
            if submitted_delta >= n && jobs_delta >= 1 && s.executed_total() == s.chunks_submitted {
                consistent = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(
            consistent,
            "executed chunk counts never reconciled with submissions: {:?}",
            stats()
        );
        // The registry mirrors see every parallel_for call.
        assert!(mga_obs::metrics::counter("pool.jobs").get() >= 1);
        assert!(mga_obs::metrics::counter("pool.chunks").get() >= n);
    }

    #[test]
    fn imbalance_ratio_is_sane() {
        let s = PoolStats {
            threads: 3,
            jobs_dispatched: 1,
            jobs_inline: 0,
            chunks_submitted: 6,
            chunks_inline: 0,
            caller_chunks: 2,
            task_panics: 0,
            worker_chunks: vec![2, 2],
        };
        assert!((s.imbalance_ratio() - 1.0).abs() < 1e-12, "balanced load");
        assert_eq!(s.executed_total(), 6);
        let empty = PoolStats {
            worker_chunks: vec![0, 0],
            caller_chunks: 0,
            chunks_submitted: 0,
            ..s
        };
        assert_eq!(empty.imbalance_ratio(), 0.0);
    }
}
