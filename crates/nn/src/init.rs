//! Seeded weight initializers.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The standard choice for tanh/sigmoid layers (the DAE and GRU gates).
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Kaiming/He uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`, for ReLU
/// layers (the fused MLP head).
pub fn kaiming_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / rows as f64).sqrt() as f32;
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Uniform in a caller-chosen symmetric range (embedding tables).
pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut StdRng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_and_determinism() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = xavier_uniform(64, 32, &mut r1);
        let b = xavier_uniform(64, 32, &mut r2);
        assert_eq!(a, b, "same seed, same init");
        let bound = (6.0f64 / 96.0).sqrt() as f32;
        assert!(a.data().iter().all(|&x| x.abs() <= bound));
        // Not degenerate.
        assert!(a.norm() > 0.0);
    }

    #[test]
    fn kaiming_bound_uses_fan_in() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = kaiming_uniform(24, 100, &mut rng);
        let bound = (6.0f64 / 24.0).sqrt() as f32;
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = uniform(10, 10, 0.01, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() <= 0.01));
    }
}
