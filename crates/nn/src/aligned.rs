//! 64-byte-aligned `f32` buffers for the kernel memory plan.
//!
//! Every buffer that can reach the microkernels — tape node storage,
//! arena scratch, serving scratch, packed plan weights — is backed by an
//! [`AlignedVec`] so its base address sits on a cache-line (and AVX-512
//! friendly) 64-byte boundary. The SIMD kernels use unaligned loads and
//! are correct either way; alignment buys the fast path on every load
//! and keeps accumulator tiles from straddling cache lines. The
//! alignment contract is enforced at the *sources* (allocation here,
//! adoption in [`crate::tensor::Tensor`] and [`crate::arena::Arena`])
//! with debug assertions, rather than at every kernel entry, because
//! kernels legitimately receive interior row panels at arbitrary
//! offsets.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) of every buffer handed to the kernels.
pub const BUF_ALIGN: usize = 64;

/// Whether a slice's base address honors the 64-byte contract. Empty
/// slices are trivially aligned (no load ever dereferences them).
#[inline]
pub fn is_aligned(buf: &[f32]) -> bool {
    buf.is_empty() || (buf.as_ptr() as usize).is_multiple_of(BUF_ALIGN)
}

/// A heap `f32` buffer whose base address is always 64-byte aligned.
///
/// Supports exactly the operations the tape/arena/serving memory plan
/// needs: zero-filled construction, `Vec::resize`-compatible reshaping
/// (existing prefix preserved, growth zero-filled), and slice access via
/// `Deref`. It is **not** a growable vector — no `push`; lengths are
/// always known up front.
pub struct AlignedVec {
    ptr: NonNull<f32>,
    len: usize,
    cap: usize,
}

// The buffer is plain `f32` data behind a unique owner.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// An empty buffer (no allocation; dangling but aligned pointer).
    pub fn new() -> AlignedVec {
        AlignedVec {
            ptr: NonNull::new(BUF_ALIGN as *mut f32).expect("BUF_ALIGN is nonzero"),
            len: 0,
            cap: 0,
        }
    }

    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(cap * std::mem::size_of::<f32>(), BUF_ALIGN)
            .expect("aligned buffer layout")
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> AlignedVec {
        if len == 0 {
            return AlignedVec::new();
        }
        let layout = Self::layout(len);
        // Zeroed pages are what `vec![0.0; len]` produced before; the OS
        // gives them back pre-zeroed for large buffers, so cost matches.
        let raw = unsafe { alloc_zeroed(layout) } as *mut f32;
        let ptr = NonNull::new(raw).unwrap_or_else(|| handle_alloc_error(layout));
        AlignedVec { ptr, len, cap: len }
    }

    /// A buffer filled with `v`.
    pub fn filled(len: usize, v: f32) -> AlignedVec {
        let mut b = AlignedVec::zeroed(len);
        if v != 0.0 {
            b.fill(v);
        }
        b
    }

    /// Copy `src` into a fresh aligned buffer.
    pub fn from_slice(src: &[f32]) -> AlignedVec {
        let mut b = AlignedVec::zeroed(src.len());
        b.copy_from_slice(src);
        b
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated capacity in elements (never shrinks).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// `Vec::resize(len, 0.0)`-compatible: keeps the existing prefix,
    /// zero-fills any growth, reuses the allocation whenever capacity
    /// suffices.
    pub fn resize_zeroed(&mut self, len: usize) {
        if len <= self.cap {
            if len > self.len {
                unsafe {
                    std::ptr::write_bytes(self.ptr.as_ptr().add(self.len), 0, len - self.len);
                }
            }
            self.len = len;
            return;
        }
        let mut grown = AlignedVec::zeroed(len);
        grown[..self.len].copy_from_slice(self);
        *self = grown;
    }

    /// Take the buffer out, leaving `self` empty.
    pub fn take(&mut self) -> AlignedVec {
        std::mem::take(self)
    }
}

impl Default for AlignedVec {
    fn default() -> AlignedVec {
        AlignedVec::new()
    }
}

/// Pads (and aligns) `T` to a full 64-byte cache line so adjacent
/// instances never share one. Producer/consumer cursor pairs (the SPSC
/// rings in [`crate::spsc`]) put each cursor in its own line to avoid
/// the false-sharing ping-pong that otherwise dominates cross-core
/// queue cost.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.cap > 0 {
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) };
        }
    }
}

impl Deref for AlignedVec {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AlignedVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> AlignedVec {
        AlignedVec::from_slice(self)
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &AlignedVec) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec[{}]", self.len)
    }
}

impl FromIterator<f32> for AlignedVec {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> AlignedVec {
        // Collect through a Vec first (iterator length may be unknown),
        // then copy into aligned storage; used on cold construction
        // paths only.
        let v: Vec<f32> = iter.into_iter().collect();
        AlignedVec::from_slice(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_64_byte_aligned() {
        for len in [1, 3, 8, 17, 64, 1000] {
            let b = AlignedVec::zeroed(len);
            assert!(is_aligned(&b), "len {len} base not 64-byte aligned");
            assert_eq!(b.len(), len);
            assert!(b.iter().all(|&x| x == 0.0));
        }
        assert!(is_aligned(&AlignedVec::new()));
    }

    #[test]
    fn resize_matches_vec_semantics() {
        let mut b = AlignedVec::filled(4, 7.0);
        b.resize_zeroed(8);
        assert_eq!(&b[..4], &[7.0; 4]);
        assert_eq!(&b[4..], &[0.0; 4]);
        assert!(is_aligned(&b));
        let cap = b.capacity();
        b.resize_zeroed(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.capacity(), cap, "shrinking keeps the allocation");
        // Growing back within capacity zero-fills the re-exposed tail.
        b[0] = 1.0;
        b[1] = 2.0;
        b.resize_zeroed(8);
        assert_eq!(&b[..2], &[1.0, 2.0]);
        assert_eq!(&b[2..], &[0.0; 6]);
    }

    #[test]
    fn clone_and_eq() {
        let a = AlignedVec::from_slice(&[1.0, 2.0, 3.0]);
        let b = a.clone();
        assert!(is_aligned(&b));
        assert_eq!(a, b);
        assert_ne!(a, AlignedVec::from_slice(&[1.0, 2.0]));
    }

    #[test]
    fn take_leaves_empty() {
        let mut a = AlignedVec::from_slice(&[5.0; 9]);
        let b = a.take();
        assert_eq!(b.len(), 9);
        assert!(a.is_empty());
    }

    #[test]
    fn cache_padded_occupies_full_lines() {
        use std::sync::atomic::AtomicU64;
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
        let pair = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*pair[0] as *const u64 as usize;
        let b = &*pair[1] as *const u64 as usize;
        assert!(b - a >= 64, "adjacent padded cells share a cache line");
        assert_eq!(CachePadded::new(7u32).into_inner(), 7);
    }
}
