//! Stress tests for the SPSC rings under real two-thread interleavings.
//!
//! The unit tests in `spsc.rs` pin the single-threaded protocol; these
//! runs put a producer and a consumer on separate OS threads with
//! adversarial pacing — tiny capacities (maximum wrap pressure), bursty
//! producers, slow consumers, and mid-stream drops — and assert the
//! properties the serving data plane leans on:
//!
//! * FIFO: values arrive exactly once, in push order;
//! * no tearing: multi-word payloads arrive internally consistent;
//! * `len()` from either side is always within `[0, capacity]` and the
//!   observer side never sees a phantom element;
//! * dropping the ring mid-stream drops every undelivered payload
//!   exactly once.
//!
//! Every wait loop yields: on a single-core box the other thread cannot
//! run until we do, and the suite must finish fast there.

use mga_nn::spsc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Multi-word payload: any torn read would break the invariant check.
#[derive(Debug)]
struct Packet {
    seq: u64,
    fill: [u64; 3],
}

impl Packet {
    fn new(seq: u64) -> Packet {
        Packet {
            seq,
            fill: [seq ^ 0xdead_beef, seq.wrapping_mul(31), !seq],
        }
    }

    fn check(&self) {
        assert_eq!(self.fill[0], self.seq ^ 0xdead_beef, "torn payload");
        assert_eq!(self.fill[1], self.seq.wrapping_mul(31), "torn payload");
        assert_eq!(self.fill[2], !self.seq, "torn payload");
    }
}

/// FIFO + no-tearing across capacities from minimal (2) to comfortable,
/// with the producer bursting and the consumer draining in gulps.
#[test]
fn two_thread_fifo_across_capacities() {
    for cap in [1usize, 2, 3, 8, 64] {
        let n: u64 = 30_000;
        let (mut p, mut c) = spsc::ring::<Packet>(cap);
        let cap_actual = p.capacity();
        let producer = thread::spawn(move || {
            let mut i = 0u64;
            while i < n {
                // Burst as far as the ring allows, then yield.
                let mut pushed = false;
                while i < n {
                    match p.try_push(Packet::new(i)) {
                        Ok(()) => {
                            i += 1;
                            pushed = true;
                        }
                        Err(_) => break,
                    }
                }
                if !pushed {
                    thread::yield_now();
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            let len = c.len();
            assert!(len <= cap_actual, "len {len} exceeds capacity {cap_actual}");
            match c.try_pop() {
                Some(pkt) => {
                    pkt.check();
                    assert_eq!(pkt.seq, expect, "out-of-order at cap {cap}");
                    expect += 1;
                }
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert!(c.try_pop().is_none(), "spurious trailing element");
    }
}

/// A deliberately slow consumer keeps the ring pinned at full; the
/// producer's `len()` view must stay sane and nothing may be lost.
#[test]
fn slow_consumer_keeps_ring_full_without_loss() {
    let n: u64 = 4_000;
    let (mut p, mut c) = spsc::ring::<u64>(4);
    let cap = p.capacity();
    let producer = thread::spawn(move || {
        for i in 0..n {
            let mut v = i;
            loop {
                match p.try_push(v) {
                    Ok(()) => break,
                    Err(back) => {
                        v = back;
                        // The consumer may pop between the refusal and
                        // this read, so only the upper bound is stable.
                        assert!(p.len() <= cap, "len exceeds capacity");
                        thread::yield_now();
                    }
                }
            }
        }
    });
    let mut expect = 0u64;
    while expect < n {
        // Drain in twos with yields between, so the producer lives at
        // the full boundary where the cached-cursor refresh matters.
        for _ in 0..2 {
            if let Some(v) = c.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        thread::yield_now();
    }
    producer.join().unwrap();
}

/// Dropping the ring with elements still queued (producer done, consumer
/// stopped early) drops each undelivered payload exactly once.
#[test]
fn mid_stream_drop_releases_every_payload_once() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Counted;
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }
    // The consumer stops early, so production must fit in what gets
    // consumed plus the ring: consume `eaten`, leave the rest queued.
    let eaten = 500usize;
    let leftover = 6usize; // < capacity, so the producer can finish
    let total = eaten + leftover;
    let produced = Arc::new(AtomicUsize::new(0));
    {
        let (mut p, mut c) = spsc::ring::<Counted>(8);
        let produced_tx = Arc::clone(&produced);
        let producer = thread::spawn(move || {
            for _ in 0..total {
                let mut v = Counted;
                loop {
                    match p.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            thread::yield_now();
                        }
                    }
                }
                produced_tx.fetch_add(1, Ordering::Relaxed);
            }
        });
        // Consume most, then walk away with the ring non-empty.
        let mut got = 0usize;
        while got < eaten {
            match c.try_pop() {
                Some(v) => {
                    drop(v);
                    got += 1;
                }
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
    } // both endpoints drop here; the ring drains its leftovers
    assert_eq!(produced.load(Ordering::Relaxed), total);
    assert_eq!(
        DROPS.load(Ordering::Relaxed),
        total,
        "consumed {eaten} by hand, ring must drop the rest exactly once"
    );
}

/// Ping-pong latency path: capacity-2 ring pair used as a rendezvous —
/// the pattern the worker plane's quiesce protocol leans on (one side
/// waits for the other's counter). Any lost update deadlocks, so
/// completing at all is the assertion; sequence checks catch reorders.
#[test]
fn ping_pong_rendezvous_never_wedges() {
    let rounds: u64 = 10_000;
    let (mut req_tx, mut req_rx) = spsc::ring::<u64>(2);
    let (mut rsp_tx, mut rsp_rx) = spsc::ring::<u64>(2);
    let echo = thread::spawn(move || {
        let mut served = 0u64;
        while served < rounds {
            match req_rx.try_pop() {
                Some(v) => {
                    let mut r = v.wrapping_mul(3);
                    loop {
                        match rsp_tx.try_push(r) {
                            Ok(()) => break,
                            Err(back) => {
                                r = back;
                                thread::yield_now();
                            }
                        }
                    }
                    served += 1;
                }
                None => thread::yield_now(),
            }
        }
    });
    for i in 0..rounds {
        let mut v = i;
        loop {
            match req_tx.try_push(v) {
                Ok(()) => break,
                Err(back) => {
                    v = back;
                    thread::yield_now();
                }
            }
        }
        loop {
            if let Some(r) = rsp_rx.try_pop() {
                assert_eq!(r, i.wrapping_mul(3), "echo out of step");
                break;
            }
            thread::yield_now();
        }
    }
    echo.join().unwrap();
}
