//! Bitwise parity of the AVX2 microkernels with the scalar fallback.
//!
//! The SIMD kernels are *constructed* to be bit-identical to the scalar
//! panels: ascending-k accumulation per output element, one mul + one
//! add rounding step per term (never FMA), and the same `a == 0.0` skip.
//! These tests pin that contract:
//!
//! * property tests drive each panel pair (zero-skip matmul, dense
//!   matmul, `aᵀ×b`) across odd shapes — non-multiple-of-tile M/N/K,
//!   single rows/columns, empty dims, zero-laced inputs — and require
//!   identical bits;
//! * a subprocess test re-runs a kernel + training battery under every
//!   `MGA_SIMD` × `MGA_THREADS` combination and compares checksums with
//!   the parent (the backend is latched once per process, so the kill
//!   switch needs a child process to exercise);
//! * alignment spot checks that tensor/arena storage honors the 64-byte
//!   contract the kernels are tuned for.

use mga_nn::aligned;
use mga_nn::arena::Arena;
use mga_nn::simd;
use mga_nn::tape::{FusedAct, Tape};
use mga_nn::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random buffer with a controllable fraction of exact zeros, so the
/// zero-skip path is exercised and not just the dense arithmetic.
fn rand_data(rng: &mut StdRng, len: usize, zero_p: f64) -> Vec<f32> {
    (0..len)
        .map(|_| {
            if rng.gen_bool(zero_p) {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect()
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero-skip matmul panel: scalar and AVX2 agree bitwise on odd
    /// shapes, including dims below one tile and an empty k.
    #[test]
    fn matmul_panels_bitwise_equal(seed in 0u64..10_000) {
        if !simd::avx2_available() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(0usize..23);
        let k = rng.gen_range(0usize..40);
        let n = rng.gen_range(0usize..50);
        let a = rand_data(&mut rng, m * k, 0.25);
        let b = rand_data(&mut rng, k * n, 0.0);
        // Non-zero initial output: the kernels accumulate.
        let mut scalar = rand_data(&mut rng, m * n, 0.0);
        let mut vector = scalar.clone();
        simd::scalar_matmul_panel(&mut scalar, &a, m, k, &b, n);
        simd::avx2_matmul_panel(&mut vector, &a, m, k, &b, n);
        prop_assert_eq!(bits(&scalar), bits(&vector));
    }

    /// Dense (no zero-skip) panel — the backward-pass flavor.
    #[test]
    fn dense_panels_bitwise_equal(seed in 0u64..10_000) {
        if !simd::avx2_available() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a);
        let m = rng.gen_range(0usize..23);
        let k = rng.gen_range(0usize..40);
        let n = rng.gen_range(0usize..50);
        let a = rand_data(&mut rng, m * k, 0.25);
        let b = rand_data(&mut rng, k * n, 0.0);
        let mut scalar = rand_data(&mut rng, m * n, 0.0);
        let mut vector = scalar.clone();
        simd::scalar_dense_panel(&mut scalar, &a, m, k, &b, n);
        simd::avx2_dense_panel(&mut vector, &a, m, k, &b, n);
        prop_assert_eq!(bits(&scalar), bits(&vector));
    }

    /// `a×bᵀ` dot-product panel (gathered columns), both overwrite and
    /// accumulate forms, across odd shapes including sub-lane widths.
    #[test]
    fn mt_panels_bitwise_equal(seed in 0u64..10_000) {
        if !simd::avx2_available() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3c3c);
        let m = rng.gen_range(0usize..23);
        let k = rng.gen_range(0usize..40);
        let n = rng.gen_range(0usize..50);
        let acc = rng.gen_bool(0.5);
        let a = rand_data(&mut rng, m * k, 0.25);
        let b = rand_data(&mut rng, n * k, 0.0);
        // Non-zero initial output: `acc` must fold onto it, the
        // overwrite form must ignore it — identically on both backends.
        let mut scalar = rand_data(&mut rng, m * n, 0.0);
        let mut vector = scalar.clone();
        simd::scalar_mt_panel(&mut scalar, &a, &b, m, k, n, acc);
        simd::avx2_mt_panel(&mut vector, &a, &b, m, k, n, acc);
        prop_assert_eq!(bits(&scalar), bits(&vector));
    }

    /// `aᵀ×b` panel (weight gradients), including interior `[lo, hi)`
    /// row ranges as the thread pool would carve them.
    #[test]
    fn t_panels_bitwise_equal(seed in 0u64..10_000) {
        if !simd::avx2_available() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
        let rows = rng.gen_range(1usize..30);
        let acols = rng.gen_range(1usize..23);
        let n = rng.gen_range(0usize..50);
        let lo = rng.gen_range(0usize..acols);
        let hi = rng.gen_range(lo..=acols);
        let a = rand_data(&mut rng, rows * acols, 0.25);
        let b = rand_data(&mut rng, rows * n, 0.0);
        let mut scalar = rand_data(&mut rng, (hi - lo) * n, 0.0);
        let mut vector = scalar.clone();
        simd::scalar_t_panel(&mut scalar, &a, &b, rows, acols, n, lo, hi);
        simd::avx2_t_panel(&mut vector, &a, &b, rows, acols, n, lo, hi);
        prop_assert_eq!(bits(&scalar), bits(&vector));
    }
}

/// Non-finite propagation must also match: the zero-skip makes
/// `0 × NaN = 0` (skipped) an intentional, shared semantic, and
/// unskipped NaN/Inf terms must poison identically.
#[test]
fn non_finite_inputs_agree_bitwise() {
    if !simd::avx2_available() {
        return;
    }
    let (m, k, n) = (3usize, 5usize, 17usize);
    let mut a = vec![1.0f32; m * k];
    a[2] = f32::NAN;
    a[7] = f32::INFINITY;
    a[11] = 0.0; // skipped even against NaN in b
    let mut b = vec![0.5f32; k * n];
    b[3] = f32::NEG_INFINITY;
    b[20] = f32::NAN;
    let mut scalar = vec![-0.0f32; m * n];
    let mut vector = scalar.clone();
    simd::scalar_matmul_panel(&mut scalar, &a, m, k, &b, n);
    simd::avx2_matmul_panel(&mut vector, &a, m, k, &b, n);
    assert_eq!(bits(&scalar), bits(&vector));
}

/// Tensor and arena storage all honors the 64-byte alignment contract
/// the microkernels are tuned for.
#[test]
fn tensor_and_arena_buffers_are_aligned() {
    for t in [
        Tensor::zeros(3, 7),
        Tensor::full(5, 5, 1.5),
        Tensor::from_vec(2, 9, (0..18).map(|i| i as f32).collect()),
        Tensor::row(vec![1.0, 2.0, 3.0]),
    ] {
        assert!(aligned::is_aligned(t.data()), "tensor storage misaligned");
    }
    let mut arena = Arena::new();
    for len in [1usize, 9, 31, 100, 4096] {
        let buf = arena.take(len);
        assert!(aligned::is_aligned(&buf), "arena buffer misaligned");
        arena.give(buf);
    }
}

/// Checksum battery shared between the parent and the env-override
/// child processes: forward matmuls (both flavors), the transpose
/// product, and a 3-epoch fused train loop so the tape's plan-time
/// dispatch and in-place backward are all part of the checksum.
fn battery() -> Vec<u64> {
    let mut sums = Vec::new();
    let mut push = |data: &[f32]| {
        let mut h = 0xcbf29ce484222325u64;
        for &x in data {
            h = (h ^ (x.to_bits() as u64)).wrapping_mul(0x100000001b3);
        }
        sums.push(h);
    };
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(31337 + seed);
        let shapes = [(1usize, 13usize, 24usize), (17, 40, 33), (160, 100, 160)];
        for (m, k, n) in shapes {
            let a = Tensor::from_vec(m, k, rand_data(&mut rng, m * k, 0.25));
            let b = Tensor::from_vec(k, n, rand_data(&mut rng, k * n, 0.0));
            push(a.matmul(&b).data());
            push(a.t_matmul(&a.matmul(&b)).data());
            push(a.matmul_t(&b.transpose()).data());
        }
    }
    let mut rng = StdRng::seed_from_u64(777);
    let x = Tensor::from_vec(96, 64, rand_data(&mut rng, 96 * 64, 0.3));
    let mut w = Tensor::from_vec(64, 48, rand_data(&mut rng, 64 * 48, 0.0));
    let mut b = Tensor::from_vec(1, 48, rand_data(&mut rng, 48, 0.0));
    let targets: Vec<u32> = (0..96).map(|_| rng.gen_range(0u32..48)).collect();
    let mut tape = Tape::new();
    for _ in 0..3 {
        tape.reset();
        let xv = tape.leaf_ref(&x);
        let wv = tape.leaf(w.clone());
        let bv = tape.leaf(b.clone());
        let y = tape.linear(xv, wv, bv, FusedAct::Relu);
        let loss = tape.softmax_cross_entropy(y, &targets);
        tape.backward(loss);
        push(tape.value(y).data());
        let gw = tape.grad(wv).expect("weight grad").clone();
        let gb = tape.grad(bv).expect("bias grad").clone();
        push(gw.data());
        w.axpy(-0.05, &gw);
        b.axpy(-0.05, &gb);
    }
    sums
}

/// End-to-end: `MGA_SIMD=0` (scalar fallback) and the default backend
/// produce bit-identical results at every thread count. The backend and
/// pool size are latched once per process, so the combinations run as
/// child processes that dump checksums for the parent to compare.
#[test]
fn mga_simd_0_matches_default_across_thread_counts() {
    const DUMP: &str = "MGA_SIMD_PARITY_DUMP";
    let sums = battery();
    if let Ok(path) = std::env::var(DUMP) {
        // Child: record and exit.
        let text: Vec<String> = sums.iter().map(|s| s.to_string()).collect();
        std::fs::write(path, text.join("\n")).expect("write parity dump");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for simd in ["0", "1"] {
        for threads in ["1", "4"] {
            let dump = std::env::temp_dir().join(format!(
                "mga_simd_parity_{}_{simd}_{threads}.txt",
                std::process::id()
            ));
            let status = std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "mga_simd_0_matches_default_across_thread_counts",
                    "--nocapture",
                ])
                .env("MGA_SIMD", simd)
                .env("MGA_THREADS", threads)
                .env(DUMP, &dump)
                .status()
                .expect("spawn backend child");
            assert!(
                status.success(),
                "MGA_SIMD={simd} MGA_THREADS={threads} child run failed"
            );
            let text = std::fs::read_to_string(&dump).expect("read parity dump");
            let _ = std::fs::remove_file(&dump);
            let child_sums: Vec<u64> = text.lines().map(|l| l.parse().unwrap()).collect();
            assert_eq!(
                sums, child_sums,
                "MGA_SIMD={simd} MGA_THREADS={threads} diverged bitwise from this process"
            );
        }
    }
}
