//! A reference interpreter for the IR.
//!
//! Executes functions on concrete values and memory buffers. The
//! modeling pipeline never needs to *run* kernels (the simulator predicts
//! their performance analytically), but the interpreter proves the IR
//! the catalog lowers is semantically meaningful — every archetype
//! executes, SAXPY really computes `a·x + y`, GEMM really multiplies —
//! and it gives downstream users a way to test kernels they author with
//! the builder.
//!
//! Pointers are `(buffer, element-offset)` pairs over typed buffers, so
//! out-of-bounds accesses fail loudly instead of corrupting memory.

use crate::instr::{CmpPred, Constant, InstrId, Opcode, Operand};
use crate::module::{BlockId, Function, Module};
use crate::types::Type;
use std::collections::HashMap;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
    /// Pointer: buffer id + element offset.
    Ptr(u32, i64),
    /// The null pointer.
    Null,
}

impl Value {
    pub fn as_int(self) -> Result<i64, InterpError> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Bool(b) => Ok(i64::from(b)),
            _ => Err(InterpError::TypeMismatch("expected int")),
        }
    }

    pub fn as_float(self) -> Result<f64, InterpError> {
        match self {
            Value::Float(v) => Ok(v),
            _ => Err(InterpError::TypeMismatch("expected float")),
        }
    }

    pub fn as_bool(self) -> Result<bool, InterpError> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err(InterpError::TypeMismatch("expected bool")),
        }
    }
}

/// Interpreter failures.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    TypeMismatch(&'static str),
    OutOfBounds { buffer: u32, index: i64, len: usize },
    UnknownFunction(String),
    ExternalCall(String),
    DivisionByZero,
    NullDeref,
    StepLimit,
    MissingPredecessor,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::TypeMismatch(w) => write!(f, "type mismatch: {w}"),
            InterpError::OutOfBounds { buffer, index, len } => {
                write!(f, "buffer {buffer} access at {index} (len {len})")
            }
            InterpError::UnknownFunction(n) => write!(f, "unknown function @{n}"),
            InterpError::ExternalCall(n) => write!(f, "call to external @{n}"),
            InterpError::DivisionByZero => write!(f, "division by zero"),
            InterpError::NullDeref => write!(f, "null dereference"),
            InterpError::StepLimit => write!(f, "step limit exceeded"),
            InterpError::MissingPredecessor => write!(f, "phi had no matching predecessor"),
        }
    }
}

impl std::error::Error for InterpError {}

/// One typed buffer: all elements share a scalar element kind.
#[derive(Debug, Clone)]
pub struct Buffer {
    data: Vec<Value>,
}

/// The interpreter's memory: a set of typed buffers addressed by id.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    buffers: Vec<Buffer>,
}

impl Memory {
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Allocate a buffer of `len` float elements initialized from `init`.
    pub fn alloc_f64(&mut self, init: &[f64]) -> Value {
        self.buffers.push(Buffer {
            data: init.iter().map(|&v| Value::Float(v)).collect(),
        });
        Value::Ptr(self.buffers.len() as u32 - 1, 0)
    }

    /// Allocate a buffer of `len` integer elements initialized from `init`.
    pub fn alloc_i64(&mut self, init: &[i64]) -> Value {
        self.buffers.push(Buffer {
            data: init.iter().map(|&v| Value::Int(v)).collect(),
        });
        Value::Ptr(self.buffers.len() as u32 - 1, 0)
    }

    /// Allocate `len` zeroed elements of `ty` (float or int).
    pub fn alloc_zeroed(&mut self, ty: &Type, len: usize) -> Value {
        let fill = if ty.is_float() {
            Value::Float(0.0)
        } else {
            Value::Int(0)
        };
        self.buffers.push(Buffer {
            data: vec![fill; len],
        });
        Value::Ptr(self.buffers.len() as u32 - 1, 0)
    }

    /// Read back a float buffer.
    pub fn read_f64(&self, ptr: Value) -> Result<Vec<f64>, InterpError> {
        let Value::Ptr(b, off) = ptr else {
            return Err(InterpError::TypeMismatch("expected pointer"));
        };
        self.buffers[b as usize].data[off as usize..]
            .iter()
            .map(|v| v.as_float())
            .collect()
    }

    fn load(&self, ptr: Value) -> Result<Value, InterpError> {
        match ptr {
            Value::Ptr(b, off) => {
                let buf = &self.buffers[b as usize];
                buf.data
                    .get(usize::try_from(off).map_err(|_| InterpError::OutOfBounds {
                        buffer: b,
                        index: off,
                        len: buf.data.len(),
                    })?)
                    .copied()
                    .ok_or(InterpError::OutOfBounds {
                        buffer: b,
                        index: off,
                        len: buf.data.len(),
                    })
            }
            Value::Null => Err(InterpError::NullDeref),
            _ => Err(InterpError::TypeMismatch("load through non-pointer")),
        }
    }

    fn store(&mut self, ptr: Value, v: Value) -> Result<(), InterpError> {
        match ptr {
            Value::Ptr(b, off) => {
                let buf = &mut self.buffers[b as usize];
                let len = buf.data.len();
                let slot = usize::try_from(off)
                    .ok()
                    .and_then(|i| buf.data.get_mut(i))
                    .ok_or(InterpError::OutOfBounds {
                        buffer: b,
                        index: off,
                        len,
                    })?;
                *slot = v;
                Ok(())
            }
            Value::Null => Err(InterpError::NullDeref),
            _ => Err(InterpError::TypeMismatch("store through non-pointer")),
        }
    }
}

/// The interpreter. Holds an instruction budget so runaway loops abort.
pub struct Interpreter<'m> {
    module: &'m Module,
    /// Remaining instruction budget.
    pub steps_left: u64,
}

impl<'m> Interpreter<'m> {
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter {
            module,
            steps_left: 50_000_000,
        }
    }

    pub fn with_step_limit(module: &'m Module, steps: u64) -> Interpreter<'m> {
        Interpreter {
            module,
            steps_left: steps,
        }
    }

    /// Run a function by name.
    pub fn run(
        &mut self,
        name: &str,
        args: Vec<Value>,
        mem: &mut Memory,
    ) -> Result<Option<Value>, InterpError> {
        let (_, f) = self
            .module
            .function_by_name(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))?;
        self.run_function(f, args, mem)
    }

    fn run_function(
        &mut self,
        f: &Function,
        args: Vec<Value>,
        mem: &mut Memory,
    ) -> Result<Option<Value>, InterpError> {
        if f.attrs.external {
            return Err(InterpError::ExternalCall(f.name.clone()));
        }
        assert_eq!(args.len(), f.params.len(), "argument count mismatch");
        let mut regs: HashMap<InstrId, Value> = HashMap::new();
        let mut block = f.entry();
        let mut prev: Option<BlockId> = None;

        'blocks: loop {
            // Phis first (they read incoming values atomically).
            let instrs = &f.block(block).instrs;
            let mut phi_values: Vec<(InstrId, Value)> = Vec::new();
            for &iid in instrs {
                let instr = f.instr(iid);
                if instr.op != Opcode::Phi {
                    break;
                }
                let p = prev.ok_or(InterpError::MissingPredecessor)?;
                let pos = instr
                    .phi_blocks
                    .iter()
                    .position(|&b| b == p)
                    .ok_or(InterpError::MissingPredecessor)?;
                let v = self.operand(f, &regs, &args, instr.args[pos])?;
                phi_values.push((iid, v));
            }
            for (iid, v) in phi_values {
                regs.insert(iid, v);
            }

            for &iid in instrs {
                let instr = f.instr(iid);
                if instr.op == Opcode::Phi {
                    continue;
                }
                if self.steps_left == 0 {
                    return Err(InterpError::StepLimit);
                }
                self.steps_left -= 1;
                let arg = |k: usize| self.operand(f, &regs, &args, instr.args[k]);
                match instr.op {
                    // ---- control flow ----
                    Opcode::Br => {
                        prev = Some(block);
                        block = instr.succs[0];
                        continue 'blocks;
                    }
                    Opcode::CondBr => {
                        let c = arg(0)?.as_bool()?;
                        prev = Some(block);
                        block = if c { instr.succs[0] } else { instr.succs[1] };
                        continue 'blocks;
                    }
                    Opcode::Ret => {
                        return if instr.args.is_empty() {
                            Ok(None)
                        } else {
                            Ok(Some(arg(0)?))
                        };
                    }
                    Opcode::Call => {
                        let callee_name = instr.callee_name.as_deref().unwrap_or("");
                        let callee = instr
                            .callee
                            .map(|ci| &self.module.functions[ci as usize])
                            .ok_or_else(|| InterpError::ExternalCall(callee_name.into()))?;
                        let mut call_args = Vec::with_capacity(instr.args.len());
                        for k in 0..instr.args.len() {
                            call_args.push(arg(k)?);
                        }
                        let r = self.run_function(callee, call_args, mem)?;
                        if let Some(v) = r {
                            regs.insert(iid, v);
                        }
                    }
                    // ---- memory ----
                    Opcode::Alloca => {
                        let n = arg(0)?.as_int()?.max(0) as usize;
                        let elem = instr.ty.pointee().expect("alloca yields pointer");
                        let p = mem.alloc_zeroed(elem, n);
                        regs.insert(iid, p);
                    }
                    Opcode::Load => {
                        let v = mem.load(arg(0)?)?;
                        regs.insert(iid, v);
                    }
                    Opcode::Store => {
                        let v = arg(0)?;
                        mem.store(arg(1)?, v)?;
                    }
                    Opcode::Gep => {
                        let base = arg(0)?;
                        let idx = arg(1)?.as_int()?;
                        let Value::Ptr(b, off) = base else {
                            return Err(InterpError::TypeMismatch("gep base"));
                        };
                        regs.insert(iid, Value::Ptr(b, off + idx));
                    }
                    Opcode::AtomicAdd => {
                        let p = arg(0)?;
                        let v = arg(1)?;
                        let old = mem.load(p)?;
                        let new = match (old, v) {
                            (Value::Float(a), Value::Float(b)) => Value::Float(a + b),
                            (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
                            _ => return Err(InterpError::TypeMismatch("atomicadd")),
                        };
                        mem.store(p, new)?;
                        regs.insert(iid, old);
                    }
                    Opcode::Barrier => {}
                    // ---- everything that yields a plain value ----
                    _ => {
                        let v = self.eval_value_op(instr.op, instr.pred, &instr.ty, arg)?;
                        regs.insert(iid, v);
                    }
                }
            }
            // A verified function always ends blocks with a terminator, so
            // falling off the loop means the terminator was handled above.
            unreachable!("block without terminator reached the interpreter");
        }
    }

    fn eval_value_op(
        &self,
        op: Opcode,
        pred: Option<CmpPred>,
        _ty: &Type,
        mut arg: impl FnMut(usize) -> Result<Value, InterpError>,
    ) -> Result<Value, InterpError> {
        use Opcode::*;
        Ok(match op {
            Add => Value::Int(arg(0)?.as_int()?.wrapping_add(arg(1)?.as_int()?)),
            Sub => Value::Int(arg(0)?.as_int()?.wrapping_sub(arg(1)?.as_int()?)),
            Mul => Value::Int(arg(0)?.as_int()?.wrapping_mul(arg(1)?.as_int()?)),
            SDiv => {
                let d = arg(1)?.as_int()?;
                if d == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                Value::Int(arg(0)?.as_int()?.wrapping_div(d))
            }
            SRem => {
                let d = arg(1)?.as_int()?;
                if d == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                Value::Int(arg(0)?.as_int()?.wrapping_rem(d))
            }
            And => Value::Int(arg(0)?.as_int()? & arg(1)?.as_int()?),
            Or => Value::Int(arg(0)?.as_int()? | arg(1)?.as_int()?),
            Xor => Value::Int(arg(0)?.as_int()? ^ arg(1)?.as_int()?),
            Shl => Value::Int(
                arg(0)?
                    .as_int()?
                    .wrapping_shl(arg(1)?.as_int()? as u32 & 63),
            ),
            AShr => Value::Int(
                arg(0)?
                    .as_int()?
                    .wrapping_shr(arg(1)?.as_int()? as u32 & 63),
            ),
            FAdd => Value::Float(arg(0)?.as_float()? + arg(1)?.as_float()?),
            FSub => Value::Float(arg(0)?.as_float()? - arg(1)?.as_float()?),
            FMul => Value::Float(arg(0)?.as_float()? * arg(1)?.as_float()?),
            FDiv => Value::Float(arg(0)?.as_float()? / arg(1)?.as_float()?),
            FNeg => Value::Float(-arg(0)?.as_float()?),
            Sqrt => Value::Float(arg(0)?.as_float()?.sqrt()),
            Exp => Value::Float(arg(0)?.as_float()?.exp()),
            Log => Value::Float(arg(0)?.as_float()?.ln()),
            Sin => Value::Float(arg(0)?.as_float()?.sin()),
            Cos => Value::Float(arg(0)?.as_float()?.cos()),
            FAbs => Value::Float(arg(0)?.as_float()?.abs()),
            Pow => Value::Float(arg(0)?.as_float()?.powf(arg(1)?.as_float()?)),
            FMin => Value::Float(arg(0)?.as_float()?.min(arg(1)?.as_float()?)),
            FMax => Value::Float(arg(0)?.as_float()?.max(arg(1)?.as_float()?)),
            ICmp => {
                let p = pred.expect("icmp predicate");
                Value::Bool(p.eval(arg(0)?.as_int()?, arg(1)?.as_int()?))
            }
            FCmp => {
                let p = pred.expect("fcmp predicate");
                Value::Bool(p.eval(arg(0)?.as_float()?, arg(1)?.as_float()?))
            }
            Select => {
                if arg(0)?.as_bool()? {
                    arg(1)?
                } else {
                    arg(2)?
                }
            }
            Trunc | SExt | ZExt => Value::Int(arg(0)?.as_int()?),
            FpTrunc | FpExt => Value::Float(arg(0)?.as_float()?),
            SiToFp => Value::Float(arg(0)?.as_int()? as f64),
            FpToSi => Value::Int(arg(0)?.as_float()? as i64),
            PtrToInt => match arg(0)? {
                Value::Ptr(b, off) => Value::Int(((b as i64) << 32) | off),
                Value::Null => Value::Int(0),
                _ => return Err(InterpError::TypeMismatch("ptrtoint")),
            },
            IntToPtr => {
                let v = arg(0)?.as_int()?;
                Value::Ptr((v >> 32) as u32, v & 0xFFFF_FFFF)
            }
            // Bitcast is a type-level reinterpretation; runtime values
            // are already tagged, so it passes through.
            Bitcast => arg(0)?,
            other => unreachable!("{other} handled elsewhere"),
        })
    }

    fn operand(
        &self,
        f: &Function,
        regs: &HashMap<InstrId, Value>,
        args: &[Value],
        op: Operand,
    ) -> Result<Value, InterpError> {
        Ok(match op {
            Operand::Instr(id) => *regs
                .get(&id)
                .expect("use of undefined value (verifier should catch this)"),
            Operand::Param(i) => args[i as usize],
            Operand::Const(i) => match &f.consts[i as usize] {
                Constant::Int(v, _) => Value::Int(*v),
                Constant::Float(v, _) => Value::Float(*v),
                Constant::Bool(b) => Value::Bool(*b),
                Constant::Null(_) => Value::Null,
            },
            Operand::Global(_) => {
                // Globals are rare in the catalog; model them as null until
                // a user binds them (none of the archetypes use them).
                Value::Null
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::CmpPred;
    use crate::module::Param;

    fn saxpy_module() -> Module {
        let mut b = FunctionBuilder::new(
            "saxpy",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I64,
                },
                Param {
                    name: "a".into(),
                    ty: Type::F64,
                },
                Param {
                    name: "x".into(),
                    ty: Type::F64.ptr(),
                },
                Param {
                    name: "y".into(),
                    ty: Type::F64.ptr(),
                },
            ],
            Type::Void,
        );
        let entry = b.current_block();
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let (i, ip) = b.phi_begin(Type::I64);
        let c = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let px = b.gep(b.param(2), i);
        let py = b.gep(b.param(3), i);
        let vx = b.load(px);
        let vy = b.load(py);
        let ax = b.fmul(b.param(1), vx);
        let s = b.fadd(ax, vy);
        b.store(s, py);
        let one = b.const_i64(1);
        let ix = b.add(i, one);
        b.br(header);
        b.phi_finish(ip, vec![(entry, zero), (body, ix)]);
        b.switch_to(exit);
        b.ret_void();
        let mut m = Module::new("t");
        m.add_function(b.finish());
        m
    }

    #[test]
    fn saxpy_computes_a_x_plus_y() {
        let m = saxpy_module();
        crate::verify_module(&m).unwrap();
        let mut mem = Memory::new();
        let x = mem.alloc_f64(&[1.0, 2.0, 3.0, 4.0]);
        let y = mem.alloc_f64(&[10.0, 20.0, 30.0, 40.0]);
        let mut interp = Interpreter::new(&m);
        interp
            .run(
                "saxpy",
                vec![Value::Int(4), Value::Float(2.0), x, y],
                &mut mem,
            )
            .unwrap();
        assert_eq!(mem.read_f64(y).unwrap(), vec![12.0, 24.0, 36.0, 48.0]);
        // x untouched.
        assert_eq!(mem.read_f64(x).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn recursion_through_calls_works() {
        // fact(n) = n <= 1 ? 1 : n * fact(n-1)
        let mut b = FunctionBuilder::new(
            "fact",
            vec![Param {
                name: "n".into(),
                ty: Type::I64,
            }],
            Type::I64,
        );
        let recurse = b.create_block("recurse");
        let base = b.create_block("base");
        let one = b.const_i64(1);
        let c = b.icmp(CmpPred::Le, b.param(0), one);
        b.cond_br(c, base, recurse);
        b.switch_to(base);
        b.ret(one);
        b.switch_to(recurse);
        let nm1 = b.sub(b.param(0), one);
        let sub = b.call("fact", vec![nm1], Type::I64);
        let prod = b.mul(b.param(0), sub);
        b.ret(prod);
        let mut m = Module::new("t");
        m.add_function(b.finish());
        m.resolve_calls();
        crate::verify_module(&m).unwrap();

        let mut mem = Memory::new();
        let mut interp = Interpreter::new(&m);
        let r = interp.run("fact", vec![Value::Int(6)], &mut mem).unwrap();
        assert_eq!(r, Some(Value::Int(720)));
    }

    #[test]
    fn out_of_bounds_is_caught() {
        let m = saxpy_module();
        let mut mem = Memory::new();
        let x = mem.alloc_f64(&[1.0, 2.0]);
        let y = mem.alloc_f64(&[1.0, 2.0]);
        let mut interp = Interpreter::new(&m);
        let e = interp
            .run(
                "saxpy",
                vec![Value::Int(10), Value::Float(1.0), x, y],
                &mut mem,
            )
            .unwrap_err();
        assert!(matches!(e, InterpError::OutOfBounds { .. }), "{e}");
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut b = FunctionBuilder::new("spin", vec![], Type::Void);
        let entry = b.current_block();
        let _ = entry;
        let lp = b.create_block("loop");
        b.br(lp);
        b.switch_to(lp);
        b.br(lp);
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut mem = Memory::new();
        let mut interp = Interpreter::with_step_limit(&m, 1000);
        let e = interp.run("spin", vec![], &mut mem).unwrap_err();
        assert_eq!(e, InterpError::StepLimit);
    }

    #[test]
    fn division_by_zero_is_reported() {
        let mut b = FunctionBuilder::new(
            "div",
            vec![
                Param {
                    name: "a".into(),
                    ty: Type::I64,
                },
                Param {
                    name: "b".into(),
                    ty: Type::I64,
                },
            ],
            Type::I64,
        );
        let q = b.sdiv(b.param(0), b.param(1));
        b.ret(q);
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut mem = Memory::new();
        let mut interp = Interpreter::new(&m);
        assert_eq!(
            interp.run("div", vec![Value::Int(10), Value::Int(2)], &mut mem),
            Ok(Some(Value::Int(5)))
        );
        let e = interp
            .run("div", vec![Value::Int(1), Value::Int(0)], &mut mem)
            .unwrap_err();
        assert_eq!(e, InterpError::DivisionByZero);
    }

    #[test]
    fn atomic_add_accumulates_and_returns_old() {
        let mut b = FunctionBuilder::new(
            "bump",
            vec![Param {
                name: "p".into(),
                ty: Type::F64.ptr(),
            }],
            Type::F64,
        );
        let one = b.const_f64(1.5);
        let old = b.atomic_add(b.param(0), one);
        b.ret(old);
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut mem = Memory::new();
        let p = mem.alloc_f64(&[10.0]);
        let mut interp = Interpreter::new(&m);
        let r = interp.run("bump", vec![p], &mut mem).unwrap();
        assert_eq!(r, Some(Value::Float(10.0)));
        assert_eq!(mem.read_f64(p).unwrap(), vec![11.5]);
    }

    #[test]
    fn alloca_provides_scratch_memory() {
        let mut b = FunctionBuilder::new("scratch", vec![], Type::F64);
        let n = b.const_i64(4);
        let buf = b.alloca(Type::F64, n);
        let idx = b.const_i64(2);
        let p = b.gep(buf, idx);
        let v = b.const_f64(7.0);
        b.store(v, p);
        let back = b.load(p);
        b.ret(back);
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut mem = Memory::new();
        let mut interp = Interpreter::new(&m);
        let r = interp.run("scratch", vec![], &mut mem).unwrap();
        assert_eq!(r, Some(Value::Float(7.0)));
    }
}
