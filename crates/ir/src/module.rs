//! Modules, functions, basic blocks, parameters and globals.

use crate::instr::{Constant, Instr, InstrId, Operand};
use crate::types::Type;

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a function within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionId(pub u32);

impl FunctionId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a global variable within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

impl GlobalId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: a label plus an ordered list of instructions ending in a
/// terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub name: String,
    pub instrs: Vec<InstrId>,
}

impl Block {
    pub fn new(name: impl Into<String>) -> Self {
        Block {
            name: name.into(),
            instrs: Vec::new(),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: Type,
}

/// Function-level attributes carried from the source programming model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionAttrs {
    /// The function body is an OpenMP `parallel for` region / OpenCL kernel.
    pub parallel: bool,
    /// The region performs a reduction (e.g. `reduction(+:sum)`).
    pub reduction: bool,
    /// External declaration only (no body).
    pub external: bool,
}

/// A function: parameters, a return type, an instruction arena, a constant
/// table and an ordered list of basic blocks (entry first).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<Param>,
    pub ret_ty: Type,
    pub blocks: Vec<Block>,
    /// Flat arena of instructions, referenced by blocks via [`InstrId`].
    pub instrs: Vec<Instr>,
    /// Constant table, referenced by [`Operand::Const`].
    pub consts: Vec<Constant>,
    pub attrs: FunctionAttrs,
}

impl Function {
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Self {
        Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: Vec::new(),
            instrs: Vec::new(),
            consts: Vec::new(),
            attrs: FunctionAttrs::default(),
        }
    }

    /// An external declaration (no body).
    pub fn declaration(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Self {
        let mut f = Function::new(name, params, ret_ty);
        f.attrs.external = true;
        f
    }

    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    pub fn instr(&self, id: InstrId) -> &Instr {
        &self.instrs[id.index()]
    }

    pub fn instr_mut(&mut self, id: InstrId) -> &mut Instr {
        &mut self.instrs[id.index()]
    }

    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The type of an operand in the context of this function and module
    /// globals.
    pub fn operand_type(&self, op: Operand, globals: &[Global]) -> Type {
        match op {
            Operand::Instr(id) => self.instr(id).ty.clone(),
            Operand::Param(i) => self.params[i as usize].ty.clone(),
            Operand::Const(i) => self.consts[i as usize].ty(),
            Operand::Global(i) => globals[i as usize].ty.clone().ptr(),
        }
    }

    /// The terminator of a block, if the block is non-empty and ends with
    /// one.
    pub fn terminator(&self, b: BlockId) -> Option<InstrId> {
        let last = *self.block(b).instrs.last()?;
        self.instr(last).op.is_terminator().then_some(last)
    }

    /// Total number of instructions in the body.
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// Iterate over `(BlockId, InstrId)` in layout order.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (BlockId, InstrId)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.instrs.iter().map(move |&iid| (BlockId(bi as u32), iid)))
    }
}

/// A module-level global variable. Operand references to a global have
/// pointer-to-`ty` type (as in LLVM).
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    pub name: String,
    pub ty: Type,
}

/// A translation unit: globals plus functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    pub name: String,
    pub globals: Vec<Global>,
    pub functions: Vec<Function>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Append a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FunctionId {
        let id = FunctionId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Append a global, returning its id.
    pub fn add_global(&mut self, name: impl Into<String>, ty: Type) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.into(),
            ty,
        });
        id
    }

    /// Look up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FunctionId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FunctionId(i as u32), f))
    }

    /// Resolve `callee` indices on all call instructions from
    /// `callee_name`s. Unresolvable names stay external.
    pub fn resolve_calls(&mut self) {
        let names: Vec<String> = self.functions.iter().map(|f| f.name.clone()).collect();
        for f in &mut self.functions {
            for instr in &mut f.instrs {
                if instr.op == crate::instr::Opcode::Call {
                    if let Some(name) = &instr.callee_name {
                        instr.callee = names.iter().position(|n| n == name).map(|i| i as u32);
                    }
                }
            }
        }
    }

    /// Total instruction count across all functions.
    pub fn num_instrs(&self) -> usize {
        self.functions.iter().map(Function::num_instrs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Opcode;

    #[test]
    fn module_add_and_lookup() {
        let mut m = Module::new("m");
        let g = m.add_global("table", Type::F64.array(16));
        assert_eq!(g, GlobalId(0));
        let f = Function::new("f", vec![], Type::Void);
        let id = m.add_function(f);
        assert_eq!(id, FunctionId(0));
        assert!(m.function_by_name("f").is_some());
        assert!(m.function_by_name("g").is_none());
    }

    #[test]
    fn operand_types() {
        let mut m = Module::new("m");
        m.add_global("g", Type::F32);
        let mut f = Function::new(
            "f",
            vec![Param {
                name: "a".into(),
                ty: Type::F64.ptr(),
            }],
            Type::Void,
        );
        f.consts.push(Constant::Int(3, Type::I64));
        f.instrs
            .push(Instr::new(Opcode::Load, Type::F64, vec![Operand::Param(0)]));
        assert_eq!(
            f.operand_type(Operand::Param(0), &m.globals),
            Type::F64.ptr()
        );
        assert_eq!(f.operand_type(Operand::Const(0), &m.globals), Type::I64);
        assert_eq!(
            f.operand_type(Operand::Instr(InstrId(0)), &m.globals),
            Type::F64
        );
        assert_eq!(
            f.operand_type(Operand::Global(0), &m.globals),
            Type::F32.ptr()
        );
    }

    #[test]
    fn resolve_calls_binds_known_names() {
        let mut m = Module::new("m");
        let mut caller = Function::new("caller", vec![], Type::Void);
        let mut call = Instr::new(Opcode::Call, Type::Void, vec![]);
        call.callee_name = Some("callee".into());
        caller.instrs.push(call);
        let mut b = Block::new("entry");
        b.instrs.push(InstrId(0));
        caller.blocks.push(b);
        m.add_function(caller);
        m.add_function(Function::new("callee", vec![], Type::Void));
        m.resolve_calls();
        assert_eq!(m.functions[0].instrs[0].callee, Some(1));
    }

    #[test]
    fn terminator_detection() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Block::new("entry");
        f.instrs.push(Instr::new(Opcode::Ret, Type::Void, vec![]));
        b.instrs.push(InstrId(0));
        f.blocks.push(b);
        assert_eq!(f.terminator(BlockId(0)), Some(InstrId(0)));
    }

    #[test]
    fn iter_instrs_layout_order() {
        let mut f = Function::new("f", vec![], Type::Void);
        f.instrs.push(Instr::new(Opcode::Br, Type::Void, vec![]));
        f.instrs.push(Instr::new(Opcode::Ret, Type::Void, vec![]));
        let mut b0 = Block::new("a");
        b0.instrs.push(InstrId(0));
        let mut b1 = Block::new("b");
        b1.instrs.push(InstrId(1));
        f.blocks.push(b0);
        f.blocks.push(b1);
        let seq: Vec<_> = f.iter_instrs().collect();
        assert_eq!(
            seq,
            vec![(BlockId(0), InstrId(0)), (BlockId(1), InstrId(1))]
        );
    }
}
