//! `mga-ir` — a miniature LLVM-like SSA intermediate representation.
//!
//! This crate is the foundation substrate of the MGA reproduction. The paper
//! ("Performance Optimization using Multimodal Modeling and Heterogeneous
//! GNN", HPDC 2023) compiles OpenMP/OpenCL code regions to LLVM IR with
//! Clang and feeds the IR to PROGRAML and IR2Vec. We have no LLVM here, so
//! this crate provides an IR with the same structural ingredients those
//! tools consume:
//!
//! * typed SSA instructions grouped into basic blocks and functions
//!   ([`Instr`], [`Block`], [`Function`], [`Module`]),
//! * explicit control flow (branch terminators), data flow (operand
//!   use-def edges) and call flow (call instructions referencing callees),
//! * a [`builder::FunctionBuilder`] for programmatic construction,
//! * a textual format with a printer ([`printer`]) and parser ([`parser`])
//!   that round-trip,
//! * a structural [`verify`]er, and
//! * analyses: CFG ([`analysis::cfg`]), dominators ([`analysis::dom`]),
//!   natural loops ([`analysis::loops`]) and def-use chains
//!   ([`analysis::defuse`]).
//!
//! Downstream, `mga-graph` turns modules into PROGRAML-style flow
//! multi-graphs and `mga-vec` extracts knowledge-graph triples for
//! IR2Vec-style seed embeddings.

pub mod analysis;
pub mod builder;
pub mod instr;
pub mod interp;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use instr::{Constant, Instr, InstrId, Opcode, Operand};
pub use interp::{Interpreter, Memory, Value};
pub use module::{Block, BlockId, Function, FunctionId, Global, GlobalId, Module, Param};
pub use types::Type;
pub use verify::{verify_function, verify_module, VerifyError};
