//! The IR type system.
//!
//! A deliberately small lattice of first-class types: the scalar types that
//! appear in HPC loop nests, pointers for memory traffic, and fixed-length
//! arrays for stack/global buffers. Function types are represented
//! structurally on [`crate::Function`] rather than as a first-class type.

use std::fmt;

/// A first-class IR type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value (function return only).
    Void,
    /// 1-bit boolean, produced by comparisons.
    I1,
    /// 8-bit integer.
    I8,
    /// 32-bit integer.
    I32,
    /// 64-bit integer (the canonical index type).
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// Fixed-length array `[len x elem]`.
    Array(Box<Type>, u64),
}

impl Type {
    /// Pointer to `self`.
    #[must_use]
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Array of `len` elements of `self`.
    #[must_use]
    pub fn array(self, len: u64) -> Type {
        Type::Array(Box::new(self), len)
    }

    /// Is this an integer type (including `i1`)?
    pub fn is_int(&self) -> bool {
        matches!(self, Type::I1 | Type::I8 | Type::I32 | Type::I64)
    }

    /// Is this a floating-point type?
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Is this a pointer type?
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Size of a value of this type in bytes, as laid out by the simulated
    /// target (pointers are 8 bytes). `Void` has size 0.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::I1 | Type::I8 => 1,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr(_) => 8,
            Type::Array(elem, len) => elem.size_bytes() * len,
        }
    }

    /// The element type of a pointer or array, if any.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Bit width of integer types, `None` otherwise.
    pub fn int_bits(&self) -> Option<u32> {
        match self {
            Type::I1 => Some(1),
            Type::I8 => Some(8),
            Type::I32 => Some(32),
            Type::I64 => Some(64),
            _ => None,
        }
    }

    /// Stable small integer id for feature encoding (used by `mga-graph`
    /// node features and `mga-vec` triple entities). Structured types fold
    /// onto their head constructor.
    pub fn feature_class(&self) -> usize {
        match self {
            Type::Void => 0,
            Type::I1 => 1,
            Type::I8 => 2,
            Type::I32 => 3,
            Type::I64 => 4,
            Type::F32 => 5,
            Type::F64 => 6,
            Type::Ptr(_) => 7,
            Type::Array(..) => 8,
        }
    }

    /// Number of distinct [`Type::feature_class`] values.
    pub const NUM_FEATURE_CLASSES: usize = 9;
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F32 => write!(f, "f32"),
            Type::F64 => write!(f, "f64"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "[{n} x {t}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::Void.size_bytes(), 0);
        assert_eq!(Type::I1.size_bytes(), 1);
        assert_eq!(Type::I32.size_bytes(), 4);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::F64.ptr().size_bytes(), 8);
        assert_eq!(Type::F32.array(10).size_bytes(), 40);
        assert_eq!(Type::F64.array(4).array(3).size_bytes(), 96);
    }

    #[test]
    fn predicates() {
        assert!(Type::I64.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F32.is_float());
        assert!(Type::I8.ptr().is_ptr());
        assert!(!Type::I8.is_ptr());
    }

    #[test]
    fn display() {
        assert_eq!(Type::F64.ptr().to_string(), "f64*");
        assert_eq!(Type::I32.array(8).to_string(), "[8 x i32]");
        assert_eq!(Type::I32.array(8).ptr().to_string(), "[8 x i32]*");
    }

    #[test]
    fn pointee() {
        assert_eq!(Type::F64.ptr().pointee(), Some(&Type::F64));
        assert_eq!(Type::I64.pointee(), None);
    }

    #[test]
    fn feature_classes_are_distinct_and_bounded() {
        let all = [
            Type::Void,
            Type::I1,
            Type::I8,
            Type::I32,
            Type::I64,
            Type::F32,
            Type::F64,
            Type::I8.ptr(),
            Type::I8.array(2),
        ];
        let mut seen = std::collections::HashSet::new();
        for t in &all {
            assert!(t.feature_class() < Type::NUM_FEATURE_CLASSES);
            assert!(seen.insert(t.feature_class()));
        }
    }
}
