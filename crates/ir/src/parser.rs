//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! Parsing normalizes instruction numbering: the parsed function's arena is
//! laid out in textual order, so `print(parse(text))` is a fixed point after
//! one round trip (see the round-trip tests and the proptest in
//! `tests/ir_roundtrip.rs`).

use crate::instr::{CmpPred, Constant, Instr, InstrId, Opcode, Operand};
use crate::module::{Block, BlockId, Function, FunctionAttrs, Global, Module, Param};
use crate::types::Type;
use std::collections::HashMap;

/// A parse failure with a line number (1-based) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

fn err<T>(line: usize, msg: impl Into<String>) -> PResult<T> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parse a type from the front of `s`, returning the type and the rest.
fn parse_type_prefix(s: &str, line: usize) -> PResult<(Type, &str)> {
    let s = s.trim_start();
    let (mut ty, mut rest) = if let Some(r) = s.strip_prefix('[') {
        // [N x ty]
        let r = r.trim_start();
        let end_num = r.find(|c: char| !c.is_ascii_digit()).unwrap_or(r.len());
        let n: u64 = r[..end_num].parse().map_err(|_| ParseError {
            line,
            msg: format!("bad array length in `{s}`"),
        })?;
        let r = r[end_num..].trim_start();
        let r = r.strip_prefix('x').ok_or(ParseError {
            line,
            msg: format!("expected `x` in array type `{s}`"),
        })?;
        let (elem, r) = parse_type_prefix(r, line)?;
        let r = r.trim_start();
        let r = r.strip_prefix(']').ok_or(ParseError {
            line,
            msg: format!("expected `]` in array type `{s}`"),
        })?;
        (elem.array(n), r)
    } else {
        let end = s
            .find(|c: char| !c.is_ascii_alphanumeric())
            .unwrap_or(s.len());
        let ty = match &s[..end] {
            "void" => Type::Void,
            "i1" => Type::I1,
            "i8" => Type::I8,
            "i32" => Type::I32,
            "i64" => Type::I64,
            "f32" => Type::F32,
            "f64" => Type::F64,
            other => return err(line, format!("unknown type `{other}`")),
        };
        (ty, &s[end..])
    };
    while let Some(r) = rest.strip_prefix('*') {
        ty = ty.ptr();
        rest = r;
    }
    Ok((ty, rest))
}

/// Parse a full string as a type.
pub fn parse_type(s: &str) -> PResult<Type> {
    let (ty, rest) = parse_type_prefix(s, 0)?;
    if rest.trim().is_empty() {
        Ok(ty)
    } else {
        err(0, format!("trailing characters after type: `{rest}`"))
    }
}

/// Split a comma-separated argument list at top level (no nesting in our
/// grammar except `[...]` phi groups, which contain no commas inside the
/// operand itself — but phi groups are handled separately).
fn split_commas(s: &str) -> Vec<&str> {
    let s = s.trim();
    if s.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim());
    out
}

struct FuncParser<'a> {
    func: Function,
    /// textual `%N` → parsed InstrId
    id_map: HashMap<u32, InstrId>,
    block_map: HashMap<String, BlockId>,
    param_map: HashMap<String, u32>,
    global_map: &'a HashMap<String, u32>,
    const_map: HashMap<String, u32>,
}

impl<'a> FuncParser<'a> {
    fn operand(&mut self, tok: &str, line: usize) -> PResult<Operand> {
        let tok = tok.trim();
        if let Some(n) = tok.strip_prefix('%') {
            let n: u32 = n.parse().map_err(|_| ParseError {
                line,
                msg: format!("bad instruction reference `{tok}`"),
            })?;
            let id = self.id_map.get(&n).copied().ok_or(ParseError {
                line,
                msg: format!("reference to undefined `%{n}`"),
            })?;
            return Ok(Operand::Instr(id));
        }
        if let Some(name) = tok.strip_prefix('$') {
            let i = self.param_map.get(name).copied().ok_or(ParseError {
                line,
                msg: format!("unknown parameter `${name}`"),
            })?;
            return Ok(Operand::Param(i));
        }
        if let Some(name) = tok.strip_prefix('@') {
            let i = self.global_map.get(name).copied().ok_or(ParseError {
                line,
                msg: format!("unknown global `@{name}`"),
            })?;
            return Ok(Operand::Global(i));
        }
        if tok == "true" || tok == "false" {
            return Ok(self.intern_const(tok, Constant::Bool(tok == "true")));
        }
        // LITERAL:ty or null:ty
        let Some(colon) = tok.rfind(':') else {
            return err(line, format!("cannot parse operand `{tok}`"));
        };
        let (lit, ty_s) = (&tok[..colon], &tok[colon + 1..]);
        let ty = parse_type(ty_s).map_err(|e| ParseError { line, msg: e.msg })?;
        let c = if lit == "null" {
            Constant::Null(ty)
        } else if lit.contains('.')
            || lit.contains('e')
            || lit.contains("inf")
            || lit.contains("NaN")
        {
            let v: f64 = lit.parse().map_err(|_| ParseError {
                line,
                msg: format!("bad float literal `{lit}`"),
            })?;
            Constant::Float(v, ty)
        } else {
            let v: i64 = lit.parse().map_err(|_| ParseError {
                line,
                msg: format!("bad int literal `{lit}`"),
            })?;
            if ty.is_float() {
                Constant::Float(v as f64, ty)
            } else {
                Constant::Int(v, ty)
            }
        };
        Ok(self.intern_const(tok, c))
    }

    fn intern_const(&mut self, key: &str, c: Constant) -> Operand {
        if let Some(&i) = self.const_map.get(key) {
            return Operand::Const(i);
        }
        let i = self.func.consts.len() as u32;
        self.func.consts.push(c);
        self.const_map.insert(key.to_string(), i);
        Operand::Const(i)
    }

    fn block_ref(&self, name: &str, line: usize) -> PResult<BlockId> {
        self.block_map.get(name).copied().ok_or(ParseError {
            line,
            msg: format!("unknown block `{name}`"),
        })
    }
}

/// Parse a module from its textual form.
pub fn parse_module(text: &str) -> PResult<Module> {
    let lines: Vec<&str> = text.lines().collect();
    let mut module = Module::default();
    let mut globals: HashMap<String, u32> = HashMap::new();
    let mut i = 0usize;

    // module "<name>" {
    while i < lines.len() && lines[i].trim().is_empty() {
        i += 1;
    }
    {
        let l = lines.get(i).copied().unwrap_or("").trim();
        let Some(rest) = l.strip_prefix("module ") else {
            return err(i + 1, "expected `module \"name\" {`");
        };
        let rest = rest.trim().trim_end_matches('{').trim();
        module.name = rest.trim_matches('"').to_string();
        i += 1;
    }

    while i < lines.len() {
        let l = lines[i].trim();
        if l.is_empty() {
            i += 1;
            continue;
        }
        if l == "}" {
            i += 1;
            continue;
        }
        if let Some(rest) = l.strip_prefix("global @") {
            let (name, ty_s) = rest.split_once(':').ok_or(ParseError {
                line: i + 1,
                msg: "expected `global @name : ty`".into(),
            })?;
            let ty = parse_type(ty_s.trim()).map_err(|e| ParseError {
                line: i + 1,
                msg: e.msg,
            })?;
            let name = name.trim().to_string();
            globals.insert(name.clone(), module.globals.len() as u32);
            module.globals.push(Global { name, ty });
            i += 1;
            continue;
        }
        if l.starts_with("func @") {
            let (f, next) = parse_function(&lines, i, &globals)?;
            module.functions.push(f);
            i = next;
            continue;
        }
        return err(i + 1, format!("unexpected line `{l}`"));
    }
    module.resolve_calls();
    Ok(module)
}

fn parse_function(
    lines: &[&str],
    start: usize,
    globals: &HashMap<String, u32>,
) -> PResult<(Function, usize)> {
    let header = lines[start].trim();
    let rest = header.strip_prefix("func @").ok_or(ParseError {
        line: start + 1,
        msg: "expected `func @` header".into(),
    })?;
    let open_paren = rest.find('(').ok_or(ParseError {
        line: start + 1,
        msg: "expected `(` in function header".into(),
    })?;
    let name = rest[..open_paren].to_string();
    let close_paren = rest.rfind(')').ok_or(ParseError {
        line: start + 1,
        msg: "expected `)` in function header".into(),
    })?;
    let params_s = &rest[open_paren + 1..close_paren];
    let mut params = Vec::new();
    for p in split_commas(params_s) {
        if p.is_empty() {
            continue;
        }
        let (pname, pty) = p.split_once(':').ok_or(ParseError {
            line: start + 1,
            msg: format!("bad parameter `{p}`"),
        })?;
        params.push(Param {
            name: pname.trim().to_string(),
            ty: parse_type(pty.trim()).map_err(|e| ParseError {
                line: start + 1,
                msg: e.msg,
            })?,
        });
    }
    let tail = rest[close_paren + 1..].trim();
    let tail = tail.strip_prefix("->").ok_or(ParseError {
        line: start + 1,
        msg: "expected `->` in function header".into(),
    })?;
    let mut tail = tail.trim();
    // return type runs until whitespace
    let ret_end = tail.find(char::is_whitespace).unwrap_or(tail.len());
    let ret_ty = parse_type(&tail[..ret_end]).map_err(|e| ParseError {
        line: start + 1,
        msg: e.msg,
    })?;
    tail = tail[ret_end..].trim();
    let mut attrs = FunctionAttrs::default();
    let mut has_body = false;
    for word in tail.split_whitespace() {
        match word {
            "parallel" => attrs.parallel = true,
            "reduction" => attrs.reduction = true,
            "external" => attrs.external = true,
            "{" => has_body = true,
            other => {
                return err(start + 1, format!("unexpected attribute `{other}`"));
            }
        }
    }

    let mut func = Function::new(name, params, ret_ty);
    func.attrs = attrs;
    if !has_body {
        return Ok((func, start + 1));
    }

    // Pre-pass: find the body extent, block labels, and textual instr ids.
    let mut end = start + 1;
    let mut block_map = HashMap::new();
    let mut id_map = HashMap::new();
    let mut next_id = 0u32;
    while end < lines.len() {
        let l = lines[end].trim();
        if l == "}" {
            break;
        }
        if let Some(label) = l.strip_suffix(':') {
            if !label.contains(' ') && !label.starts_with('%') {
                let bid = BlockId(block_map.len() as u32);
                block_map.insert(label.to_string(), bid);
                func.blocks.push(Block::new(label));
                end += 1;
                continue;
            }
        }
        if !l.is_empty() {
            if let Some(Some(n)) = l.strip_prefix('%').and_then(|r| {
                r.split_once(" =")
                    .map(|(n, _)| n.trim().parse::<u32>().ok())
            }) {
                id_map.insert(n, InstrId(next_id));
            }
            next_id += 1;
        }
        end += 1;
    }
    if end >= lines.len() {
        return err(start + 1, "unterminated function body");
    }

    let param_map: HashMap<String, u32> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i as u32))
        .collect();

    let mut fp = FuncParser {
        func,
        id_map,
        block_map,
        param_map,
        global_map: globals,
        const_map: HashMap::new(),
    };

    // Second pass: parse instructions.
    let mut cur_block: Option<BlockId> = None;
    for (lineno, l) in lines[start + 1..end].iter().enumerate() {
        let line = start + 2 + lineno;
        let l = l.trim();
        if l.is_empty() {
            continue;
        }
        if let Some(label) = l.strip_suffix(':') {
            if !label.contains(' ') && !label.starts_with('%') {
                cur_block = Some(fp.block_ref(label, line)?);
                continue;
            }
        }
        let cur = cur_block.ok_or(ParseError {
            line,
            msg: "instruction before first block label".into(),
        })?;
        let instr = parse_instr(&mut fp, l, line)?;
        let id = InstrId(fp.func.instrs.len() as u32);
        fp.func.instrs.push(instr);
        fp.func.blocks[cur.index()].instrs.push(id);
    }
    Ok((fp.func, end + 1))
}

fn parse_instr(fp: &mut FuncParser<'_>, l: &str, line: usize) -> PResult<Instr> {
    // Optional `%N = ` prefix (the id itself was recorded in the pre-pass).
    let body = match l.split_once(" = ") {
        Some((lhs, rhs)) if lhs.starts_with('%') => rhs,
        _ => l,
    };
    let body = body.trim();
    let (head, rest) = body.split_once(char::is_whitespace).unwrap_or((body, ""));
    let (mn, pred) = match head.split_once('.') {
        Some((mn, p)) => (mn, Some(p)),
        None => (head, None),
    };
    let op = Opcode::from_mnemonic(mn).ok_or(ParseError {
        line,
        msg: format!("unknown opcode `{mn}`"),
    })?;
    let rest = rest.trim();
    let (ty, rest) = parse_type_prefix(rest, line)?;
    let rest = rest.trim();
    let mut instr = Instr::new(op, ty, Vec::new());
    if let Some(p) = pred {
        instr.pred = Some(CmpPred::from_mnemonic(p).ok_or(ParseError {
            line,
            msg: format!("unknown predicate `{p}`"),
        })?);
    }
    match op {
        Opcode::Phi => {
            for group in split_commas(rest) {
                let inner = group
                    .strip_prefix('[')
                    .and_then(|g| g.strip_suffix(']'))
                    .ok_or(ParseError {
                        line,
                        msg: format!("bad phi group `{group}`"),
                    })?;
                let (bb, val) = inner.split_once(':').ok_or(ParseError {
                    line,
                    msg: format!("bad phi group `{group}`"),
                })?;
                instr.phi_blocks.push(fp.block_ref(bb.trim(), line)?);
                let v = fp.operand(val, line)?;
                instr.args.push(v);
            }
        }
        Opcode::Br => {
            instr.succs.push(fp.block_ref(rest, line)?);
        }
        Opcode::CondBr => {
            let parts = split_commas(rest);
            if parts.len() != 3 {
                return err(line, format!("condbr expects 3 operands, got `{rest}`"));
            }
            let c = fp.operand(parts[0], line)?;
            instr.args.push(c);
            instr.succs.push(fp.block_ref(parts[1], line)?);
            instr.succs.push(fp.block_ref(parts[2], line)?);
        }
        Opcode::Call => {
            let (callee, args_s) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            let callee = callee.strip_prefix('@').ok_or(ParseError {
                line,
                msg: format!("call expects `@callee`, got `{callee}`"),
            })?;
            instr.callee_name = Some(callee.to_string());
            for a in split_commas(args_s) {
                if a.is_empty() {
                    continue;
                }
                let v = fp.operand(a, line)?;
                instr.args.push(v);
            }
        }
        _ => {
            for a in split_commas(rest) {
                if a.is_empty() {
                    continue;
                }
                let v = fp.operand(a, line)?;
                instr.args.push(v);
            }
        }
    }
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::module_str;

    #[test]
    fn parse_types() {
        assert_eq!(parse_type("i64").unwrap(), Type::I64);
        assert_eq!(parse_type("f64*").unwrap(), Type::F64.ptr());
        assert_eq!(parse_type("f64**").unwrap(), Type::F64.ptr().ptr());
        assert_eq!(parse_type("[8 x f32]").unwrap(), Type::F32.array(8));
        assert_eq!(
            parse_type("[4 x [2 x i32]]*").unwrap(),
            Type::I32.array(2).array(4).ptr()
        );
        assert!(parse_type("i7").is_err());
        assert!(parse_type("f64 trailing").is_err());
    }

    #[test]
    fn split_commas_respects_groups() {
        assert_eq!(split_commas("a, b, c"), vec!["a", "b", "c"]);
        assert_eq!(
            split_commas("[e: 1:i64], [b: %7]"),
            vec!["[e: 1:i64]", "[b: %7]"]
        );
        assert_eq!(split_commas(""), Vec::<&str>::new());
    }

    fn build_example() -> Module {
        use crate::instr::CmpPred;
        let mut m = Module::new("ex");
        m.add_global("lut", Type::F64.array(16));
        let mut b = FunctionBuilder::new(
            "scale",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I64,
                },
                Param {
                    name: "a".into(),
                    ty: Type::F64.ptr(),
                },
            ],
            Type::Void,
        );
        b.set_parallel(false);
        let entry = b.current_block();
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi_begin(Type::I64);
        let cond = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(cond, body, exit);
        b.switch_to(body);
        let addr = b.gep(b.param(1), i);
        let v = b.load(addr);
        let two = b.const_f64(2.0);
        let scaled = b.fmul(v, two);
        b.store(scaled, addr);
        let one = b.const_i64(1);
        let inext = b.add(i, one);
        b.br(header);
        b.phi_finish(i_phi, vec![(entry, zero), (body, inext)]);
        b.switch_to(exit);
        let x = b.call("helper", vec![scaled], Type::F64);
        let _ = x;
        b.ret_void();
        m.add_function(b.finish());
        m.add_function(Function::declaration(
            "helper",
            vec![Param {
                name: "x".into(),
                ty: Type::F64,
            }],
            Type::F64,
        ));
        m.resolve_calls();
        m
    }

    #[test]
    fn round_trip_is_fixed_point() {
        let m = build_example();
        let t1 = module_str(&m);
        let p1 = parse_module(&t1).expect("first parse");
        let t2 = module_str(&p1);
        let p2 = parse_module(&t2).expect("second parse");
        let t3 = module_str(&p2);
        assert_eq!(t2, t3, "print∘parse must be a fixed point");
        // Structure is preserved.
        assert_eq!(p2.functions.len(), 2);
        assert_eq!(p2.functions[0].blocks.len(), 4);
        assert_eq!(p2.globals.len(), 1);
        // Calls got resolved.
        let call = p2.functions[0]
            .instrs
            .iter()
            .find(|i| i.op == Opcode::Call)
            .unwrap();
        assert_eq!(call.callee, Some(1));
    }

    #[test]
    fn parse_reports_unknown_opcode() {
        let text = "module \"m\" {\nfunc @f() -> void {\nentry:\n  frobnicate void\n}\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.msg.contains("unknown opcode"));
        assert_eq!(e.line, 4);
    }

    #[test]
    fn parse_reports_undefined_reference() {
        let text =
            "module \"m\" {\nfunc @f() -> void {\nentry:\n  %0 = add i64 %5, 1:i64\n  ret void\n}\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.msg.contains("undefined"), "{e}");
    }

    #[test]
    fn parse_external_function() {
        let text = "module \"m\" {\nfunc @ext(x: f64) -> f64 external\n}\n";
        let m = parse_module(text).unwrap();
        assert!(m.functions[0].attrs.external);
        assert_eq!(m.functions[0].params.len(), 1);
    }

    #[test]
    fn negative_and_special_literals_round_trip() {
        let mut b = FunctionBuilder::new("f", vec![], Type::F64);
        let neg = b.const_f64(-2.5);
        let negzero = b.const_f64(-0.0);
        let negint = b.const_i64(-42);
        let fneg = b.fmul(neg, negzero);
        let asf = b.sitofp(negint, Type::F64);
        let sum = b.fadd(fneg, asf);
        b.ret(sum);
        let mut m = Module::new("m");
        m.add_function(b.finish());
        let t1 = module_str(&m);
        let p1 = parse_module(&t1).expect("parse negatives");
        assert_eq!(module_str(&p1), t1);
        crate::verify_module(&p1).unwrap();
        // The parsed constants preserve sign (including -0.0 bits).
        let consts = &p1.functions[0].consts;
        assert!(consts
            .iter()
            .any(|c| matches!(c, Constant::Float(v, _) if *v == -2.5)));
        assert!(consts
            .iter()
            .any(|c| matches!(c, Constant::Float(v, _) if v.to_bits() == (-0.0f64).to_bits())));
        assert!(consts.iter().any(|c| matches!(c, Constant::Int(-42, _))));
    }

    #[test]
    fn forward_references_in_phi_resolve() {
        let m = build_example();
        let text = module_str(&m);
        // The phi in `header` references `%N` defined later in `body`.
        let p = parse_module(&text).unwrap();
        let phi = p.functions[0]
            .instrs
            .iter()
            .find(|i| i.op == Opcode::Phi)
            .unwrap();
        assert_eq!(phi.args.len(), 2);
    }
}
