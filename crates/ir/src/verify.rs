//! Structural and type verification of IR.
//!
//! The verifier enforces the invariants the rest of the pipeline relies on:
//!
//! * every block is non-empty and ends with exactly one terminator, which
//!   is the only terminator in the block;
//! * all operand references are in range, and instruction operands refer
//!   to instructions that exist in some block (no orphans);
//! * phis have matching `args`/`phi_blocks` lengths and their incoming
//!   blocks are actual predecessors;
//! * operand and result types agree with each opcode's typing rule;
//! * branch targets are valid blocks;
//! * calls reference known callees when resolved, and argument counts
//!   match the callee signature.

use crate::analysis::cfg::Cfg;
use crate::instr::{Instr, InstrId, Opcode, Operand};
use crate::module::{BlockId, Function, Module};
use crate::types::Type;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub function: String,
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verify error in @{}: {}", self.function, self.msg)
    }
}

impl std::error::Error for VerifyError {}

fn fail(func: &Function, msg: impl Into<String>) -> Result<(), VerifyError> {
    Err(VerifyError {
        function: func.name.clone(),
        msg: msg.into(),
    })
}

/// Verify a whole module.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.functions {
        verify_function(f, m)?;
    }
    Ok(())
}

/// Verify one function in the context of its module.
pub fn verify_function(f: &Function, m: &Module) -> Result<(), VerifyError> {
    if f.attrs.external {
        if !f.blocks.is_empty() {
            return fail(f, "external function must have no body");
        }
        return Ok(());
    }
    if f.blocks.is_empty() {
        return fail(f, "function has no blocks");
    }

    // Each instruction appears in exactly one block.
    let mut seen = vec![false; f.instrs.len()];
    for b in &f.blocks {
        for &iid in &b.instrs {
            if iid.index() >= f.instrs.len() {
                return fail(f, format!("block {} references missing %{}", b.name, iid.0));
            }
            if seen[iid.index()] {
                return fail(f, format!("%{} appears in more than one block", iid.0));
            }
            seen[iid.index()] = true;
        }
    }

    // Terminators: exactly one, at the end.
    for (bi, b) in f.blocks.iter().enumerate() {
        let Some(&last) = b.instrs.last() else {
            return fail(f, format!("block {bi} ({}) is empty", b.name));
        };
        if !f.instr(last).op.is_terminator() {
            return fail(f, format!("block {} does not end in a terminator", b.name));
        }
        for &iid in &b.instrs[..b.instrs.len() - 1] {
            if f.instr(iid).op.is_terminator() {
                return fail(
                    f,
                    format!("block {} has a terminator before its end", b.name),
                );
            }
        }
    }

    let cfg = Cfg::build(f);

    for (bi, b) in f.blocks.iter().enumerate() {
        for &iid in &b.instrs {
            let instr = f.instr(iid);
            verify_operand_ranges(f, m, iid, instr, &seen)?;
            verify_types(f, m, iid, instr)?;
            verify_shape(f, m, iid, instr, BlockId(bi as u32), &cfg)?;
        }
    }
    Ok(())
}

fn verify_operand_ranges(
    f: &Function,
    m: &Module,
    iid: InstrId,
    instr: &Instr,
    placed: &[bool],
) -> Result<(), VerifyError> {
    for &a in &instr.args {
        match a {
            Operand::Instr(d) => {
                if d.index() >= f.instrs.len() {
                    return fail(f, format!("%{} uses out-of-range %{}", iid.0, d.0));
                }
                if !placed[d.index()] {
                    return fail(f, format!("%{} uses orphan instruction %{}", iid.0, d.0));
                }
                if !f.instr(d).has_result() {
                    return fail(f, format!("%{} uses void result of %{}", iid.0, d.0));
                }
            }
            Operand::Param(i) => {
                if i as usize >= f.params.len() {
                    return fail(f, format!("%{} uses out-of-range parameter {i}", iid.0));
                }
            }
            Operand::Const(i) => {
                if i as usize >= f.consts.len() {
                    return fail(f, format!("%{} uses out-of-range constant {i}", iid.0));
                }
            }
            Operand::Global(i) => {
                if i as usize >= m.globals.len() {
                    return fail(f, format!("%{} uses out-of-range global {i}", iid.0));
                }
            }
        }
    }
    for &s in &instr.succs {
        if s.index() >= f.blocks.len() {
            return fail(f, format!("%{} branches to missing block {}", iid.0, s.0));
        }
    }
    Ok(())
}

fn verify_types(f: &Function, m: &Module, iid: InstrId, instr: &Instr) -> Result<(), VerifyError> {
    let at = |k: usize| f.operand_type(instr.args[k], &m.globals);
    let arity = |n: usize| -> Result<(), VerifyError> {
        if instr.args.len() != n {
            fail(
                f,
                format!(
                    "%{} ({}) expects {n} operands, has {}",
                    iid.0,
                    instr.op,
                    instr.args.len()
                ),
            )
        } else {
            Ok(())
        }
    };

    let op = instr.op;
    if op.is_int_binop() {
        arity(2)?;
        if !at(0).is_int() || at(0) != at(1) || instr.ty != at(0) {
            return fail(f, format!("%{} ({op}) int binop type mismatch", iid.0));
        }
    } else if op.is_float_binop() {
        arity(2)?;
        if !at(0).is_float() || at(0) != at(1) || instr.ty != at(0) {
            return fail(f, format!("%{} ({op}) float binop type mismatch", iid.0));
        }
    } else if matches!(
        op,
        Opcode::FNeg
            | Opcode::Sqrt
            | Opcode::Exp
            | Opcode::Log
            | Opcode::Sin
            | Opcode::Cos
            | Opcode::FAbs
    ) {
        arity(1)?;
        if !at(0).is_float() || instr.ty != at(0) {
            return fail(f, format!("%{} ({op}) float unop type mismatch", iid.0));
        }
    } else if op.is_cast() {
        arity(1)?;
        if instr.ty == Type::Void {
            return fail(f, format!("%{} cast to void", iid.0));
        }
    } else {
        match op {
            Opcode::Alloca => {
                arity(1)?;
                if !at(0).is_int() || !instr.ty.is_ptr() {
                    return fail(f, format!("%{} alloca typing", iid.0));
                }
            }
            Opcode::Load => {
                arity(1)?;
                let ok = at(0).pointee() == Some(&instr.ty) && at(0).is_ptr();
                if !ok {
                    return fail(f, format!("%{} load type mismatch", iid.0));
                }
            }
            Opcode::Store => {
                arity(2)?;
                if at(1).pointee() != Some(&at(0)) {
                    return fail(f, format!("%{} store type mismatch", iid.0));
                }
            }
            Opcode::Gep => {
                arity(2)?;
                if !at(0).is_ptr() || !at(1).is_int() || instr.ty != at(0) {
                    return fail(f, format!("%{} gep typing", iid.0));
                }
            }
            Opcode::AtomicAdd => {
                arity(2)?;
                if at(0).pointee() != Some(&at(1)) || instr.ty != at(1) {
                    return fail(f, format!("%{} atomicadd typing", iid.0));
                }
            }
            Opcode::ICmp => {
                arity(2)?;
                if instr.pred.is_none() || instr.ty != Type::I1 || at(0) != at(1) || !at(0).is_int()
                {
                    return fail(f, format!("%{} icmp typing", iid.0));
                }
            }
            Opcode::FCmp => {
                arity(2)?;
                if instr.pred.is_none()
                    || instr.ty != Type::I1
                    || at(0) != at(1)
                    || !at(0).is_float()
                {
                    return fail(f, format!("%{} fcmp typing", iid.0));
                }
            }
            Opcode::Select => {
                arity(3)?;
                if at(0) != Type::I1 || at(1) != at(2) || instr.ty != at(1) {
                    return fail(f, format!("%{} select typing", iid.0));
                }
            }
            Opcode::Phi => {
                if instr.args.len() != instr.phi_blocks.len() || instr.args.is_empty() {
                    return fail(f, format!("%{} phi arity mismatch", iid.0));
                }
                for k in 0..instr.args.len() {
                    if at(k) != instr.ty {
                        return fail(f, format!("%{} phi incoming type mismatch", iid.0));
                    }
                }
            }
            Opcode::Br => {
                arity(0)?;
                if instr.succs.len() != 1 {
                    return fail(f, format!("%{} br needs one successor", iid.0));
                }
            }
            Opcode::CondBr => {
                arity(1)?;
                if at(0) != Type::I1 || instr.succs.len() != 2 {
                    return fail(f, format!("%{} condbr shape", iid.0));
                }
            }
            Opcode::Ret => {
                if f.ret_ty == Type::Void {
                    if !instr.args.is_empty() {
                        return fail(f, "void function returns a value".to_string());
                    }
                } else {
                    arity(1)?;
                    if at(0) != f.ret_ty {
                        return fail(f, "return type mismatch".to_string());
                    }
                }
            }
            Opcode::Call => {
                if instr.callee_name.is_none() {
                    return fail(f, format!("%{} call without callee name", iid.0));
                }
                if let Some(ci) = instr.callee {
                    let callee = &m.functions[ci as usize];
                    if callee.params.len() != instr.args.len() {
                        return fail(
                            f,
                            format!(
                                "%{} call to @{} passes {} args, expects {}",
                                iid.0,
                                callee.name,
                                instr.args.len(),
                                callee.params.len()
                            ),
                        );
                    }
                    for (k, p) in callee.params.iter().enumerate() {
                        if at(k) != p.ty {
                            return fail(
                                f,
                                format!(
                                    "%{} call arg {k} type mismatch for @{}",
                                    iid.0, callee.name
                                ),
                            );
                        }
                    }
                    if instr.ty != callee.ret_ty {
                        return fail(f, format!("%{} call return type mismatch", iid.0));
                    }
                }
            }
            Opcode::Barrier => {
                arity(0)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn verify_shape(
    f: &Function,
    _m: &Module,
    iid: InstrId,
    instr: &Instr,
    block: BlockId,
    cfg: &Cfg,
) -> Result<(), VerifyError> {
    if instr.op == Opcode::Phi {
        let preds = cfg.preds(block);
        if instr.phi_blocks.len() != preds.len() {
            return fail(
                f,
                format!(
                    "%{} phi has {} incoming, block has {} predecessors",
                    iid.0,
                    instr.phi_blocks.len(),
                    preds.len()
                ),
            );
        }
        for &pb in &instr.phi_blocks {
            if !preds.contains(&pb) {
                return fail(
                    f,
                    format!(
                        "%{} phi incoming block {} is not a predecessor",
                        iid.0,
                        f.blocks[pb.index()].name
                    ),
                );
            }
        }
    }
    if !instr.op.is_terminator() && !instr.succs.is_empty() {
        return fail(f, format!("%{} non-terminator has successors", iid.0));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::CmpPred;
    use crate::module::Param;

    fn valid_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new(
            "f",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I64,
                },
                Param {
                    name: "a".into(),
                    ty: Type::F64.ptr(),
                },
            ],
            Type::Void,
        );
        let entry = b.current_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let (i, ip) = b.phi_begin(Type::I64);
        let c = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.gep(b.param(1), i);
        let v = b.load(p);
        let v2 = b.fadd(v, v);
        b.store(v2, p);
        let one = b.const_i64(1);
        let inx = b.add(i, one);
        b.br(header);
        b.phi_finish(ip, vec![(entry, zero), (body, inx)]);
        b.switch_to(exit);
        b.ret_void();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn accepts_valid_function() {
        let m = valid_module();
        verify_module(&m).expect("valid module verifies");
    }

    #[test]
    fn rejects_type_mismatch_in_binop() {
        let mut m = valid_module();
        // Turn the fadd into an add (int op on floats).
        let f = &mut m.functions[0];
        let idx = f.instrs.iter().position(|i| i.op == Opcode::FAdd).unwrap();
        f.instrs[idx].op = Opcode::Add;
        let e = verify_module(&m).unwrap_err();
        assert!(e.msg.contains("int binop"), "{e}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = valid_module();
        let f = &mut m.functions[0];
        let exit = f.blocks.len() - 1;
        f.blocks[exit].instrs.clear();
        let e = verify_module(&m).unwrap_err();
        assert!(e.msg.contains("empty"), "{e}");
    }

    #[test]
    fn rejects_phi_with_bad_predecessor() {
        let mut m = valid_module();
        let f = &mut m.functions[0];
        let phi = f.instrs.iter_mut().find(|i| i.op == Opcode::Phi).unwrap();
        // Point an incoming edge at the exit block, which is not a pred.
        phi.phi_blocks[1] = BlockId(3);
        let e = verify_module(&m).unwrap_err();
        assert!(e.msg.contains("not a predecessor"), "{e}");
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let mut m = valid_module();
        let f = &mut m.functions[0];
        let br = f.instrs.iter_mut().find(|i| i.op == Opcode::Br).unwrap();
        br.succs[0] = BlockId(99);
        let e = verify_module(&m).unwrap_err();
        assert!(e.msg.contains("missing block"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let x = b.const_f64(1.0);
        b.call("g", vec![x], Type::Void);
        b.ret_void();
        m.add_function(b.finish());
        m.add_function(Function::declaration("g", vec![], Type::Void));
        m.resolve_calls();
        let e = verify_module(&m).unwrap_err();
        assert!(e.msg.contains("passes 1 args"), "{e}");
    }

    #[test]
    fn accepts_parsed_round_trip() {
        let m = valid_module();
        let text = crate::printer::module_str(&m);
        let p = crate::parser::parse_module(&text).unwrap();
        verify_module(&p).expect("parsed module verifies");
    }

    use crate::module::Function;
}
