//! Textual IR output.
//!
//! The format is line-oriented and uniform so [`crate::parser`] can
//! round-trip it:
//!
//! ```text
//! module "kernels" {
//! global @lut : [256 x f64]
//! func @scale(n: i64, a: f64*) -> void parallel {
//! entry:
//!   br void header
//! header:
//!   %1 = phi i64 [entry: 0:i64], [body: %7]
//!   %2 = icmp.lt i1 %1, $n
//!   condbr void %2, body, exit
//! ...
//! }
//! }
//! ```
//!
//! Operands: `%N` instruction result, `$name` parameter, `@name` global,
//! `LITERAL:ty` constant (`true`/`false` for booleans, `null:ty` for null
//! pointers).

use crate::instr::{Constant, Instr, Opcode, Operand};
use crate::module::{Function, Module};
use std::fmt::Write;

/// Render an operand in the context of a function and module.
pub fn operand_str(f: &Function, m: &Module, op: Operand) -> String {
    match op {
        Operand::Instr(id) => format!("%{}", id.0),
        Operand::Param(i) => format!("${}", f.params[i as usize].name),
        Operand::Global(i) => format!("@{}", m.globals[i as usize].name),
        Operand::Const(i) => match &f.consts[i as usize] {
            Constant::Bool(b) => b.to_string(),
            Constant::Null(t) => format!("null:{t}"),
            c @ Constant::Int(_, t) => format!("{c}:{t}"),
            c @ Constant::Float(_, t) => format!("{c}:{t}"),
        },
    }
}

/// Render one instruction line (without indentation or trailing newline).
pub fn instr_str(f: &Function, m: &Module, id: crate::InstrId, instr: &Instr) -> String {
    let mut s = String::new();
    if instr.has_result() {
        write!(s, "%{} = ", id.0).unwrap();
    }
    match instr.op {
        Opcode::ICmp | Opcode::FCmp => {
            write!(
                s,
                "{}.{}",
                instr.op,
                instr.pred.expect("cmp predicate").mnemonic()
            )
            .unwrap();
        }
        _ => write!(s, "{}", instr.op).unwrap(),
    }
    write!(s, " {}", instr.ty).unwrap();
    match instr.op {
        Opcode::Phi => {
            for (k, (&b, &v)) in instr.phi_blocks.iter().zip(&instr.args).enumerate() {
                let sep = if k == 0 { " " } else { ", " };
                write!(
                    s,
                    "{sep}[{}: {}]",
                    f.blocks[b.index()].name,
                    operand_str(f, m, v)
                )
                .unwrap();
            }
        }
        Opcode::Br => {
            write!(s, " {}", f.blocks[instr.succs[0].index()].name).unwrap();
        }
        Opcode::CondBr => {
            write!(
                s,
                " {}, {}, {}",
                operand_str(f, m, instr.args[0]),
                f.blocks[instr.succs[0].index()].name,
                f.blocks[instr.succs[1].index()].name
            )
            .unwrap();
        }
        Opcode::Call => {
            write!(s, " @{}", instr.callee_name.as_deref().unwrap_or("?")).unwrap();
            for (k, &a) in instr.args.iter().enumerate() {
                let sep = if k == 0 { " " } else { ", " };
                write!(s, "{sep}{}", operand_str(f, m, a)).unwrap();
            }
        }
        _ => {
            for (k, &a) in instr.args.iter().enumerate() {
                let sep = if k == 0 { " " } else { ", " };
                write!(s, "{sep}{}", operand_str(f, m, a)).unwrap();
            }
        }
    }
    s
}

/// Render a whole function.
pub fn function_str(f: &Function, m: &Module) -> String {
    let mut s = String::new();
    write!(s, "func @{}(", f.name).unwrap();
    for (k, p) in f.params.iter().enumerate() {
        let sep = if k == 0 { "" } else { ", " };
        write!(s, "{sep}{}: {}", p.name, p.ty).unwrap();
    }
    write!(s, ") -> {}", f.ret_ty).unwrap();
    if f.attrs.parallel {
        s.push_str(" parallel");
    }
    if f.attrs.reduction {
        s.push_str(" reduction");
    }
    if f.attrs.external {
        s.push_str(" external\n");
        return s;
    }
    s.push_str(" {\n");
    for b in &f.blocks {
        writeln!(s, "{}:", b.name).unwrap();
        for &iid in &b.instrs {
            writeln!(s, "  {}", instr_str(f, m, iid, f.instr(iid))).unwrap();
        }
    }
    s.push_str("}\n");
    s
}

/// Render a whole module.
pub fn module_str(m: &Module) -> String {
    let mut s = String::new();
    writeln!(s, "module \"{}\" {{", m.name).unwrap();
    for g in &m.globals {
        writeln!(s, "global @{} : {}", g.name, g.ty).unwrap();
    }
    for f in &m.functions {
        s.push_str(&function_str(f, m));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::CmpPred;
    use crate::module::Param;
    use crate::types::Type;

    #[test]
    fn prints_module_shape() {
        let mut m = Module::new("t");
        m.add_global("lut", Type::F64.array(4));
        let mut b = FunctionBuilder::new(
            "f",
            vec![Param {
                name: "n".into(),
                ty: Type::I64,
            }],
            Type::I64,
        );
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Gt, b.param(0), zero);
        let one = b.const_i64(1);
        let sel = b.select(c, one, zero);
        b.ret(sel);
        m.add_function(b.finish());
        let text = module_str(&m);
        assert!(text.contains("module \"t\" {"));
        assert!(text.contains("global @lut : [4 x f64]"));
        assert!(text.contains("func @f(n: i64) -> i64 {"));
        assert!(text.contains("icmp.gt i1 $n, 0:i64"));
        assert!(text.contains("select i64"));
        assert!(text.contains("ret void %"));
    }

    #[test]
    fn prints_external_declaration() {
        let mut m = Module::new("t");
        m.add_function(crate::Function::declaration("ext", vec![], Type::Void));
        let text = module_str(&m);
        assert!(text.contains("func @ext() -> void external"));
    }
}
