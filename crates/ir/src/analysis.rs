//! IR analyses: control-flow graph, dominators, natural loops and def-use
//! chains.
//!
//! These feed `mga-graph` (flow multi-graph construction) and `mga-vec`
//! (flow-aware embeddings), and back the verifier's phi checks.

pub mod cfg {
    //! Control-flow graph over basic blocks.

    use crate::module::{BlockId, Function};

    /// Successor and predecessor lists per block.
    #[derive(Debug, Clone)]
    pub struct Cfg {
        succs: Vec<Vec<BlockId>>,
        preds: Vec<Vec<BlockId>>,
    }

    impl Cfg {
        /// Build the CFG from block terminators.
        pub fn build(f: &Function) -> Cfg {
            let n = f.blocks.len();
            let mut succs = vec![Vec::new(); n];
            let mut preds = vec![Vec::new(); n];
            for (bi, b) in f.blocks.iter().enumerate() {
                if let Some(&last) = b.instrs.last() {
                    for &s in &f.instr(last).succs {
                        if s.index() < n {
                            succs[bi].push(s);
                            preds[s.index()].push(BlockId(bi as u32));
                        }
                    }
                }
            }
            Cfg { succs, preds }
        }

        pub fn num_blocks(&self) -> usize {
            self.succs.len()
        }

        pub fn succs(&self, b: BlockId) -> &[BlockId] {
            &self.succs[b.index()]
        }

        pub fn preds(&self, b: BlockId) -> &[BlockId] {
            &self.preds[b.index()]
        }

        /// Blocks in reverse post-order from the entry.
        pub fn reverse_post_order(&self) -> Vec<BlockId> {
            let n = self.num_blocks();
            let mut visited = vec![false; n];
            let mut post = Vec::with_capacity(n);
            // Iterative DFS with an explicit stack of (block, next-succ-index).
            let mut stack: Vec<(BlockId, usize)> = Vec::new();
            if n > 0 {
                visited[0] = true;
                stack.push((BlockId(0), 0));
            }
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < self.succs(b).len() {
                    let s = self.succs(b)[*i];
                    *i += 1;
                    if !visited[s.index()] {
                        visited[s.index()] = true;
                        stack.push((s, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
            post.reverse();
            post
        }

        /// Blocks reachable from the entry.
        pub fn reachable(&self) -> Vec<bool> {
            let order = self.reverse_post_order();
            let mut r = vec![false; self.num_blocks()];
            for b in order {
                r[b.index()] = true;
            }
            r
        }
    }
}

pub mod dom {
    //! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

    use super::cfg::Cfg;
    use crate::module::BlockId;

    /// Immediate-dominator table. Unreachable blocks have no idom.
    #[derive(Debug, Clone)]
    pub struct Dominators {
        idom: Vec<Option<BlockId>>,
        rpo_index: Vec<usize>,
    }

    impl Dominators {
        /// Compute dominators of the CFG rooted at block 0.
        pub fn compute(cfg: &Cfg) -> Dominators {
            let n = cfg.num_blocks();
            let rpo = cfg.reverse_post_order();
            let mut rpo_index = vec![usize::MAX; n];
            for (i, b) in rpo.iter().enumerate() {
                rpo_index[b.index()] = i;
            }
            let mut idom: Vec<Option<BlockId>> = vec![None; n];
            if n == 0 {
                return Dominators { idom, rpo_index };
            }
            idom[0] = Some(BlockId(0));
            let mut changed = true;
            while changed {
                changed = false;
                for &b in rpo.iter().skip(1) {
                    let mut new_idom: Option<BlockId> = None;
                    for &p in cfg.preds(b) {
                        if idom[p.index()].is_none() {
                            continue;
                        }
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                    if let Some(ni) = new_idom {
                        if idom[b.index()] != Some(ni) {
                            idom[b.index()] = Some(ni);
                            changed = true;
                        }
                    }
                }
            }
            Dominators { idom, rpo_index }
        }

        /// Immediate dominator of `b` (the entry's idom is itself).
        pub fn idom(&self, b: BlockId) -> Option<BlockId> {
            self.idom[b.index()]
        }

        /// Does `a` dominate `b`? (Reflexive.)
        pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
            let mut cur = b;
            loop {
                if cur == a {
                    return true;
                }
                match self.idom(cur) {
                    Some(d) if d != cur => cur = d,
                    _ => return false,
                }
            }
        }

        /// Reverse-post-order index of a block (`usize::MAX` if unreachable).
        pub fn rpo_index(&self, b: BlockId) -> usize {
            self.rpo_index[b.index()]
        }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_index: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("intersect on processed nodes");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("intersect on processed nodes");
            }
        }
        a
    }
}

pub mod loops {
    //! Natural-loop detection from back edges.

    use super::cfg::Cfg;
    use super::dom::Dominators;
    use crate::module::{BlockId, Function};

    /// One natural loop.
    #[derive(Debug, Clone)]
    pub struct NaturalLoop {
        /// The loop header (target of the back edge).
        pub header: BlockId,
        /// The source of the back edge.
        pub latch: BlockId,
        /// All blocks in the loop body (including header and latch).
        pub blocks: Vec<BlockId>,
        /// Nesting depth (1 = outermost).
        pub depth: usize,
    }

    /// All natural loops of a function, with nesting depths.
    pub struct LoopInfo {
        pub loops: Vec<NaturalLoop>,
        /// Per-block loop nesting depth (0 = not in any loop).
        pub depth: Vec<usize>,
    }

    impl LoopInfo {
        /// Detect loops via back edges `latch -> header` where the header
        /// dominates the latch.
        pub fn compute(f: &Function) -> LoopInfo {
            let cfg = Cfg::build(f);
            let dom = Dominators::compute(&cfg);
            let n = f.blocks.len();
            let mut loops = Vec::new();
            for bi in 0..n {
                let b = BlockId(bi as u32);
                for &s in cfg.succs(b) {
                    if dom.rpo_index(s) != usize::MAX && dom.dominates(s, b) {
                        // Back edge b -> s: collect the natural loop.
                        let mut blocks = vec![s];
                        let mut stack = vec![b];
                        while let Some(x) = stack.pop() {
                            if !blocks.contains(&x) {
                                blocks.push(x);
                                for &p in cfg.preds(x) {
                                    stack.push(p);
                                }
                            }
                        }
                        blocks.sort();
                        loops.push(NaturalLoop {
                            header: s,
                            latch: b,
                            blocks,
                            depth: 0,
                        });
                    }
                }
            }
            // Depth: number of loops containing each block.
            let mut depth = vec![0usize; n];
            for l in &loops {
                for &b in &l.blocks {
                    depth[b.index()] += 1;
                }
            }
            for l in &mut loops {
                l.depth = depth[l.header.index()];
            }
            LoopInfo { loops, depth }
        }

        /// Maximum nesting depth in the function.
        pub fn max_depth(&self) -> usize {
            self.depth.iter().copied().max().unwrap_or(0)
        }
    }
}

pub mod defuse {
    //! Def-use chains over SSA operands.

    use crate::instr::{InstrId, Operand};
    use crate::module::Function;

    /// For each instruction, the instructions using its result.
    pub struct DefUse {
        uses: Vec<Vec<InstrId>>,
    }

    impl DefUse {
        pub fn compute(f: &Function) -> DefUse {
            let mut uses = vec![Vec::new(); f.instrs.len()];
            for (_b, iid) in f.iter_instrs() {
                for &a in &f.instr(iid).args {
                    if let Operand::Instr(d) = a {
                        uses[d.index()].push(iid);
                    }
                }
            }
            DefUse { uses }
        }

        /// Users of an instruction's result.
        pub fn uses(&self, id: InstrId) -> &[InstrId] {
            &self.uses[id.index()]
        }

        /// Number of instructions with no users (dead values, side-effect
        /// free or not).
        pub fn count_unused(&self, f: &Function) -> usize {
            (0..f.instrs.len())
                .filter(|&i| f.instrs[i].has_result() && self.uses[i].is_empty())
                .count()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::cfg::Cfg;
    use super::defuse::DefUse;
    use super::dom::Dominators;
    use super::loops::LoopInfo;
    use crate::builder::FunctionBuilder;
    use crate::instr::CmpPred;
    use crate::module::{BlockId, Function, Param};
    use crate::types::Type;

    /// entry -> header -> {body -> header, exit}; the canonical loop.
    fn loop_func() -> Function {
        let mut b = FunctionBuilder::new(
            "f",
            vec![Param {
                name: "n".into(),
                ty: Type::I64,
            }],
            Type::Void,
        );
        let entry = b.current_block();
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let (i, ip) = b.phi_begin(Type::I64);
        let c = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let one = b.const_i64(1);
        let inx = b.add(i, one);
        b.br(header);
        b.phi_finish(ip, vec![(entry, zero), (body, inx)]);
        b.switch_to(exit);
        b.ret_void();
        b.finish()
    }

    /// Nested 2-deep loop: entry -> h1 -> (h2 -> (b2 -> h2) | l1 -> h1) | exit.
    fn nested_loop_func() -> Function {
        let mut b = FunctionBuilder::new(
            "g",
            vec![Param {
                name: "n".into(),
                ty: Type::I64,
            }],
            Type::Void,
        );
        let entry = b.current_block();
        let h1 = b.create_block("h1");
        let h2 = b.create_block("h2");
        let b2 = b.create_block("b2");
        let l1 = b.create_block("l1");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(h1);
        b.switch_to(h1);
        let (i, ip) = b.phi_begin(Type::I64);
        let ci = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(ci, h2, exit);
        b.switch_to(h2);
        let (j, jp) = b.phi_begin(Type::I64);
        let cj = b.icmp(CmpPred::Lt, j, b.param(0));
        b.cond_br(cj, b2, l1);
        b.switch_to(b2);
        let jn = b.add(j, one);
        b.br(h2);
        b.phi_finish(jp, vec![(h1, zero), (b2, jn)]);
        b.switch_to(l1);
        let inx = b.add(i, one);
        b.br(h1);
        b.phi_finish(ip, vec![(entry, zero), (l1, inx)]);
        b.switch_to(exit);
        b.ret_void();
        b.finish()
    }

    #[test]
    fn cfg_edges() {
        let f = loop_func();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1)]);
        assert_eq!(cfg.succs(BlockId(1)), &[BlockId(2), BlockId(3)]);
        assert_eq!(cfg.succs(BlockId(2)), &[BlockId(1)]);
        assert!(cfg.succs(BlockId(3)).is_empty());
        assert_eq!(cfg.preds(BlockId(1)).len(), 2);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = loop_func();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn dominators_of_loop() {
        let f = loop_func();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert!(dom.dominates(BlockId(2), BlockId(2)));
    }

    #[test]
    fn detects_single_loop() {
        let f = loop_func();
        let li = LoopInfo::compute(&f);
        assert_eq!(li.loops.len(), 1);
        let l = &li.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latch, BlockId(2));
        assert_eq!(l.blocks, vec![BlockId(1), BlockId(2)]);
        assert_eq!(li.max_depth(), 1);
        assert_eq!(li.depth[0], 0);
        assert_eq!(li.depth[3], 0);
    }

    #[test]
    fn detects_nested_loops_with_depth() {
        let f = nested_loop_func();
        let li = LoopInfo::compute(&f);
        assert_eq!(li.loops.len(), 2);
        assert_eq!(li.max_depth(), 2);
        let inner = li.loops.iter().find(|l| l.depth == 2).unwrap();
        assert_eq!(inner.header, BlockId(2));
        let outer = li.loops.iter().find(|l| l.depth == 1).unwrap();
        assert_eq!(outer.header, BlockId(1));
        // The inner loop blocks are a subset of the outer loop blocks.
        assert!(inner.blocks.iter().all(|b| outer.blocks.contains(b)));
    }

    #[test]
    fn def_use_chains() {
        let f = loop_func();
        let du = DefUse::compute(&f);
        // The phi result is used by the icmp and the add.
        let phi = f
            .instrs
            .iter()
            .position(|i| i.op == crate::Opcode::Phi)
            .unwrap();
        assert_eq!(du.uses(crate::InstrId(phi as u32)).len(), 2);
        // The add result is used by the phi only.
        let add = f
            .instrs
            .iter()
            .position(|i| i.op == crate::Opcode::Add)
            .unwrap();
        assert_eq!(du.uses(crate::InstrId(add as u32)).len(), 1);
        assert_eq!(du.count_unused(&f), 0);
    }
}
