//! Ergonomic construction of IR functions.
//!
//! [`FunctionBuilder`] keeps a current insertion block and offers one typed
//! helper per opcode family, inferring result types from operands. Constants
//! are interned in the function's constant table.
//!
//! ```
//! use mga_ir::{builder::FunctionBuilder, Type, Param};
//! use mga_ir::instr::CmpPred;
//!
//! // f(n: i64, a: f64*) { for i in 0..n { a[i] = a[i] * 2.0 } }
//! let mut b = FunctionBuilder::new(
//!     "scale",
//!     vec![
//!         Param { name: "n".into(), ty: Type::I64 },
//!         Param { name: "a".into(), ty: Type::F64.ptr() },
//!     ],
//!     Type::Void,
//! );
//! let entry = b.current_block();
//! let header = b.create_block("header");
//! let body = b.create_block("body");
//! let exit = b.create_block("exit");
//!
//! let zero = b.const_i64(0);
//! b.br(header);
//!
//! b.switch_to(header);
//! let (i, i_phi) = b.phi_begin(Type::I64);
//! let cond = b.icmp(CmpPred::Lt, i, b.param(0));
//! b.cond_br(cond, body, exit);
//!
//! b.switch_to(body);
//! let addr = b.gep(b.param(1), i);
//! let v = b.load(addr);
//! let two = b.const_f64(2.0);
//! let scaled = b.fmul(v, two);
//! b.store(scaled, addr);
//! let one = b.const_i64(1);
//! let inext = b.add(i, one);
//! b.br(header);
//!
//! b.phi_finish(i_phi, vec![(entry, zero), (body, inext)]);
//! b.switch_to(exit);
//! b.ret_void();
//! let f = b.finish();
//! assert_eq!(f.blocks.len(), 4);
//! ```

use crate::instr::{CmpPred, Constant, Instr, InstrId, Opcode, Operand};
use crate::module::{Block, BlockId, Function, Param};
use crate::types::Type;
use std::collections::HashMap;

/// Interning key for constants (bit-exact for floats).
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64, usize),
    Float(u64, usize),
    Bool(bool),
    Null(String),
}

/// Builder for a single [`Function`].
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
    const_map: HashMap<ConstKey, u32>,
    /// Types of module globals, for [`Operand::Global`] typing. Set with
    /// [`FunctionBuilder::set_global_types`] when the function uses globals.
    global_types: Vec<Type>,
}

impl FunctionBuilder {
    /// Start building a function; an `entry` block is created and selected.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Self {
        let mut func = Function::new(name, params, ret_ty);
        func.blocks.push(Block::new("entry"));
        FunctionBuilder {
            func,
            cur: BlockId(0),
            const_map: HashMap::new(),
            global_types: Vec::new(),
        }
    }

    /// Provide the module's global-variable types so operands referencing
    /// globals can be typed.
    pub fn set_global_types(&mut self, tys: Vec<Type>) {
        self.global_types = tys;
    }

    /// Create a new (empty) block without switching to it.
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::new(name));
        id
    }

    /// Move the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Mark the function as an OpenMP-parallel / OpenCL-kernel region.
    pub fn set_parallel(&mut self, reduction: bool) {
        self.func.attrs.parallel = true;
        self.func.attrs.reduction = reduction;
    }

    fn push(&mut self, instr: Instr) -> InstrId {
        let id = InstrId(self.func.instrs.len() as u32);
        self.func.instrs.push(instr);
        self.func.blocks[self.cur.index()].instrs.push(id);
        id
    }

    /// The type of any operand already known to this builder.
    pub fn operand_type(&self, op: Operand) -> Type {
        match op {
            Operand::Instr(id) => self.func.instr(id).ty.clone(),
            Operand::Param(i) => self.func.params[i as usize].ty.clone(),
            Operand::Const(i) => self.func.consts[i as usize].ty(),
            Operand::Global(i) => self.global_types[i as usize].clone().ptr(),
        }
    }

    // ---- constants -------------------------------------------------------

    fn intern(&mut self, key: ConstKey, c: Constant) -> Operand {
        let consts = &mut self.func.consts;
        let idx = *self.const_map.entry(key).or_insert_with(|| {
            consts.push(c);
            (consts.len() - 1) as u32
        });
        Operand::Const(idx)
    }

    pub fn const_int(&mut self, v: i64, ty: Type) -> Operand {
        let key = ConstKey::Int(v, ty.feature_class());
        self.intern(key, Constant::Int(v, ty))
    }

    pub fn const_i64(&mut self, v: i64) -> Operand {
        self.const_int(v, Type::I64)
    }

    pub fn const_i32(&mut self, v: i32) -> Operand {
        self.const_int(v as i64, Type::I32)
    }

    pub fn const_float(&mut self, v: f64, ty: Type) -> Operand {
        let key = ConstKey::Float(v.to_bits(), ty.feature_class());
        self.intern(key, Constant::Float(v, ty))
    }

    pub fn const_f64(&mut self, v: f64) -> Operand {
        self.const_float(v, Type::F64)
    }

    pub fn const_f32(&mut self, v: f32) -> Operand {
        self.const_float(v as f64, Type::F32)
    }

    pub fn const_bool(&mut self, v: bool) -> Operand {
        self.intern(ConstKey::Bool(v), Constant::Bool(v))
    }

    /// The null pointer of pointer type `ty`.
    pub fn const_null(&mut self, ty: Type) -> Operand {
        assert!(ty.is_ptr(), "null constant must have pointer type");
        let key = ConstKey::Null(ty.to_string());
        self.intern(key, Constant::Null(ty))
    }

    /// The n-th parameter as an operand.
    pub fn param(&self, i: u32) -> Operand {
        assert!(
            (i as usize) < self.func.params.len(),
            "parameter index {i} out of range"
        );
        Operand::Param(i)
    }

    // ---- arithmetic ------------------------------------------------------

    fn binop(&mut self, op: Opcode, a: Operand, b: Operand) -> Operand {
        let ty = self.operand_type(a);
        Operand::Instr(self.push(Instr::new(op, ty, vec![a, b])))
    }

    pub fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Add, a, b)
    }

    pub fn sub(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Sub, a, b)
    }

    pub fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Mul, a, b)
    }

    pub fn sdiv(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::SDiv, a, b)
    }

    pub fn srem(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::SRem, a, b)
    }

    pub fn and(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::And, a, b)
    }

    pub fn or(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Or, a, b)
    }

    pub fn xor(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Xor, a, b)
    }

    pub fn shl(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Shl, a, b)
    }

    pub fn ashr(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::AShr, a, b)
    }

    pub fn fadd(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FAdd, a, b)
    }

    pub fn fsub(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FSub, a, b)
    }

    pub fn fmul(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FMul, a, b)
    }

    pub fn fdiv(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FDiv, a, b)
    }

    pub fn pow(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Pow, a, b)
    }

    pub fn fmin(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FMin, a, b)
    }

    pub fn fmax(&mut self, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FMax, a, b)
    }

    fn unop(&mut self, op: Opcode, a: Operand) -> Operand {
        let ty = self.operand_type(a);
        Operand::Instr(self.push(Instr::new(op, ty, vec![a])))
    }

    pub fn fneg(&mut self, a: Operand) -> Operand {
        self.unop(Opcode::FNeg, a)
    }

    pub fn sqrt(&mut self, a: Operand) -> Operand {
        self.unop(Opcode::Sqrt, a)
    }

    pub fn exp(&mut self, a: Operand) -> Operand {
        self.unop(Opcode::Exp, a)
    }

    pub fn log(&mut self, a: Operand) -> Operand {
        self.unop(Opcode::Log, a)
    }

    pub fn sin(&mut self, a: Operand) -> Operand {
        self.unop(Opcode::Sin, a)
    }

    pub fn cos(&mut self, a: Operand) -> Operand {
        self.unop(Opcode::Cos, a)
    }

    pub fn fabs(&mut self, a: Operand) -> Operand {
        self.unop(Opcode::FAbs, a)
    }

    // ---- memory ----------------------------------------------------------

    /// Stack allocation of `count` elements of `ty`; yields `ty*`.
    pub fn alloca(&mut self, ty: Type, count: Operand) -> Operand {
        Operand::Instr(self.push(Instr::new(Opcode::Alloca, ty.ptr(), vec![count])))
    }

    /// Load through a pointer; the result type is the pointee type.
    pub fn load(&mut self, ptr: Operand) -> Operand {
        let ty = self
            .operand_type(ptr)
            .pointee()
            .cloned()
            .expect("load from non-pointer operand");
        Operand::Instr(self.push(Instr::new(Opcode::Load, ty, vec![ptr])))
    }

    /// Store `value` through `ptr`.
    pub fn store(&mut self, value: Operand, ptr: Operand) {
        self.push(Instr::new(Opcode::Store, Type::Void, vec![value, ptr]));
    }

    /// Element pointer: `base[idx]` where `base: T*`, `idx: i64` → `T*`.
    /// Multi-dimensional accesses linearize the index first.
    pub fn gep(&mut self, base: Operand, idx: Operand) -> Operand {
        let ty = self.operand_type(base);
        assert!(ty.is_ptr(), "gep base must be a pointer, got {ty}");
        Operand::Instr(self.push(Instr::new(Opcode::Gep, ty, vec![base, idx])))
    }

    /// Atomic fetch-add through a pointer (lowered from OpenMP `atomic` /
    /// reduction combiners).
    pub fn atomic_add(&mut self, ptr: Operand, value: Operand) -> Operand {
        let ty = self
            .operand_type(ptr)
            .pointee()
            .cloned()
            .expect("atomic_add through non-pointer");
        Operand::Instr(self.push(Instr::new(Opcode::AtomicAdd, ty, vec![ptr, value])))
    }

    /// Work-group / team barrier.
    pub fn barrier(&mut self) {
        self.push(Instr::new(Opcode::Barrier, Type::Void, vec![]));
    }

    // ---- comparisons, casts, select ---------------------------------------

    pub fn icmp(&mut self, pred: CmpPred, a: Operand, b: Operand) -> Operand {
        let mut i = Instr::new(Opcode::ICmp, Type::I1, vec![a, b]);
        i.pred = Some(pred);
        Operand::Instr(self.push(i))
    }

    pub fn fcmp(&mut self, pred: CmpPred, a: Operand, b: Operand) -> Operand {
        let mut i = Instr::new(Opcode::FCmp, Type::I1, vec![a, b]);
        i.pred = Some(pred);
        Operand::Instr(self.push(i))
    }

    pub fn cast(&mut self, op: Opcode, a: Operand, to: Type) -> Operand {
        assert!(op.is_cast(), "{op} is not a cast opcode");
        Operand::Instr(self.push(Instr::new(op, to, vec![a])))
    }

    pub fn sitofp(&mut self, a: Operand, to: Type) -> Operand {
        self.cast(Opcode::SiToFp, a, to)
    }

    pub fn fptosi(&mut self, a: Operand, to: Type) -> Operand {
        self.cast(Opcode::FpToSi, a, to)
    }

    pub fn sext(&mut self, a: Operand, to: Type) -> Operand {
        self.cast(Opcode::SExt, a, to)
    }

    pub fn trunc(&mut self, a: Operand, to: Type) -> Operand {
        self.cast(Opcode::Trunc, a, to)
    }

    pub fn select(&mut self, cond: Operand, t: Operand, f: Operand) -> Operand {
        let ty = self.operand_type(t);
        Operand::Instr(self.push(Instr::new(Opcode::Select, ty, vec![cond, t, f])))
    }

    // ---- phi ---------------------------------------------------------------

    /// Begin a phi whose incoming values are not all known yet (loop-carried
    /// values). Finish it with [`FunctionBuilder::phi_finish`].
    pub fn phi_begin(&mut self, ty: Type) -> (Operand, InstrId) {
        let id = self.push(Instr::new(Opcode::Phi, ty, vec![]));
        (Operand::Instr(id), id)
    }

    /// Complete a phi started with [`FunctionBuilder::phi_begin`].
    pub fn phi_finish(&mut self, phi: InstrId, incoming: Vec<(BlockId, Operand)>) {
        let instr = self.func.instr_mut(phi);
        assert_eq!(instr.op, Opcode::Phi);
        for (b, v) in incoming {
            instr.phi_blocks.push(b);
            instr.args.push(v);
        }
    }

    /// A phi with all incoming values known.
    pub fn phi(&mut self, ty: Type, incoming: Vec<(BlockId, Operand)>) -> Operand {
        let (op, id) = self.phi_begin(ty);
        self.phi_finish(id, incoming);
        op
    }

    // ---- control flow ------------------------------------------------------

    pub fn br(&mut self, target: BlockId) {
        let mut i = Instr::new(Opcode::Br, Type::Void, vec![]);
        i.succs = vec![target];
        self.push(i);
    }

    pub fn cond_br(&mut self, cond: Operand, then_b: BlockId, else_b: BlockId) {
        let mut i = Instr::new(Opcode::CondBr, Type::Void, vec![cond]);
        i.succs = vec![then_b, else_b];
        self.push(i);
    }

    pub fn ret(&mut self, value: Operand) {
        self.push(Instr::new(Opcode::Ret, Type::Void, vec![value]));
    }

    pub fn ret_void(&mut self) {
        self.push(Instr::new(Opcode::Ret, Type::Void, vec![]));
    }

    /// Call a function by name. `callee` indices are resolved later by
    /// [`crate::Module::resolve_calls`].
    pub fn call(&mut self, name: impl Into<String>, args: Vec<Operand>, ret_ty: Type) -> Operand {
        let mut i = Instr::new(Opcode::Call, ret_ty, args);
        i.callee_name = Some(name.into());
        Operand::Instr(self.push(i))
    }

    /// Finish building. Panics if any block lacks a terminator (use
    /// [`crate::verify_function`] for recoverable checking).
    pub fn finish(self) -> Function {
        for (bi, b) in self.func.blocks.iter().enumerate() {
            let ok = b
                .instrs
                .last()
                .is_some_and(|&iid| self.func.instr(iid).op.is_terminator());
            assert!(
                ok,
                "block {} ({}) of function {} lacks a terminator",
                bi, b.name, self.func.name
            );
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_loop() -> Function {
        let mut b = FunctionBuilder::new(
            "scale",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I64,
                },
                Param {
                    name: "a".into(),
                    ty: Type::F64.ptr(),
                },
            ],
            Type::Void,
        );
        let entry = b.current_block();
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi_begin(Type::I64);
        let cond = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(cond, body, exit);
        b.switch_to(body);
        let addr = b.gep(b.param(1), i);
        let v = b.load(addr);
        let two = b.const_f64(2.0);
        let scaled = b.fmul(v, two);
        b.store(scaled, addr);
        let one = b.const_i64(1);
        let inext = b.add(i, one);
        b.br(header);
        b.phi_finish(i_phi, vec![(entry, zero), (body, inext)]);
        b.switch_to(exit);
        b.ret_void();
        b.finish()
    }

    #[test]
    fn builds_loop_function() {
        let f = simple_loop();
        assert_eq!(f.blocks.len(), 4);
        assert!(f.num_instrs() >= 9);
        // Header phi has two incoming edges.
        let phi = f
            .instrs
            .iter()
            .find(|i| i.op == Opcode::Phi)
            .expect("phi present");
        assert_eq!(phi.args.len(), 2);
        assert_eq!(phi.phi_blocks.len(), 2);
    }

    #[test]
    fn constants_are_interned() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let a = b.const_i64(7);
        let c = b.const_i64(7);
        assert_eq!(a, c);
        let d = b.const_i64(8);
        assert_ne!(a, d);
        // Same numeric value, different type: distinct constants.
        let e = b.const_int(7, Type::I32);
        assert_ne!(a, e);
        // Float zero and negative zero are bit-distinct.
        let z = b.const_f64(0.0);
        let nz = b.const_f64(-0.0);
        assert_ne!(z, nz);
    }

    #[test]
    fn load_infers_pointee_type() {
        let mut b = FunctionBuilder::new(
            "f",
            vec![Param {
                name: "p".into(),
                ty: Type::F32.ptr(),
            }],
            Type::Void,
        );
        let v = b.load(b.param(0));
        assert_eq!(b.operand_type(v), Type::F32);
        b.ret_void();
        b.finish();
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn finish_rejects_open_block() {
        let b = FunctionBuilder::new("f", vec![], Type::Void);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "load from non-pointer")]
    fn load_from_scalar_panics() {
        let mut b = FunctionBuilder::new(
            "f",
            vec![Param {
                name: "x".into(),
                ty: Type::I64,
            }],
            Type::Void,
        );
        let _ = b.load(b.param(0));
    }

    #[test]
    fn alloca_and_atomic() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let n = b.const_i64(16);
        let buf = b.alloca(Type::F64, n);
        assert_eq!(b.operand_type(buf), Type::F64.ptr());
        let one = b.const_f64(1.0);
        let old = b.atomic_add(buf, one);
        assert_eq!(b.operand_type(old), Type::F64);
        b.ret_void();
        b.finish();
    }

    #[test]
    fn call_records_name() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let x = b.const_f64(2.0);
        let r = b.call("ext", vec![x], Type::F64);
        assert_eq!(b.operand_type(r), Type::F64);
        b.ret_void();
        let f = b.finish();
        let call = f.instrs.iter().find(|i| i.op == Opcode::Call).unwrap();
        assert_eq!(call.callee_name.as_deref(), Some("ext"));
    }
}
