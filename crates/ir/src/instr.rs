//! Instructions, opcodes, operands and constants.

use crate::types::Type;
use std::fmt;

/// Index of an instruction in its function's instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId(pub u32);

impl InstrId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Every operation the IR supports.
///
/// The set mirrors the LLVM instructions that dominate HPC loop nests:
/// integer/float arithmetic, memory access, address computation,
/// comparisons, casts, control flow and calls, plus a handful of math
/// intrinsics (`sqrt`, `exp`, ...) that appear in the benchmark kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    // Integer arithmetic.
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    AShr,
    // Float arithmetic.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FNeg,
    // Math intrinsics (unary unless noted).
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    FAbs,
    Pow, // binary
    FMin,
    FMax,
    // Memory.
    Alloca,
    Load,
    Store,
    Gep,
    // Comparisons (predicate stored separately).
    ICmp,
    FCmp,
    // Casts.
    Trunc,
    SExt,
    ZExt,
    FpTrunc,
    FpExt,
    SiToFp,
    FpToSi,
    PtrToInt,
    IntToPtr,
    Bitcast,
    // Misc value ops.
    Select,
    Phi,
    // Control flow / calls.
    Br,
    CondBr,
    Ret,
    Call,
    // Synchronization markers (lowered from OpenMP/OpenCL constructs).
    AtomicAdd,
    Barrier,
}

impl Opcode {
    /// All opcodes, in feature-class order.
    pub const ALL: [Opcode; 48] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::SDiv,
        Opcode::SRem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::AShr,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FNeg,
        Opcode::Sqrt,
        Opcode::Exp,
        Opcode::Log,
        Opcode::Sin,
        Opcode::Cos,
        Opcode::FAbs,
        Opcode::Pow,
        Opcode::FMin,
        Opcode::FMax,
        Opcode::Alloca,
        Opcode::Load,
        Opcode::Store,
        Opcode::Gep,
        Opcode::ICmp,
        Opcode::FCmp,
        Opcode::Trunc,
        Opcode::SExt,
        Opcode::ZExt,
        Opcode::FpTrunc,
        Opcode::FpExt,
        Opcode::SiToFp,
        Opcode::FpToSi,
        Opcode::PtrToInt,
        Opcode::IntToPtr,
        Opcode::Bitcast,
        Opcode::Select,
        Opcode::Phi,
        Opcode::Br,
        Opcode::CondBr,
        Opcode::Ret,
        Opcode::Call,
        Opcode::AtomicAdd,
        Opcode::Barrier,
    ];

    /// Stable small integer id for feature encoding.
    pub fn feature_class(self) -> usize {
        match self {
            Opcode::Add => 0,
            Opcode::Sub => 1,
            Opcode::Mul => 2,
            Opcode::SDiv => 3,
            Opcode::SRem => 4,
            Opcode::And => 5,
            Opcode::Or => 6,
            Opcode::Xor => 7,
            Opcode::Shl => 8,
            Opcode::AShr => 9,
            Opcode::FAdd => 10,
            Opcode::FSub => 11,
            Opcode::FMul => 12,
            Opcode::FDiv => 13,
            Opcode::FNeg => 14,
            Opcode::Sqrt => 15,
            Opcode::Exp => 16,
            Opcode::Log => 17,
            Opcode::Sin => 18,
            Opcode::Cos => 19,
            Opcode::FAbs => 20,
            Opcode::Pow => 21,
            Opcode::FMin => 22,
            Opcode::FMax => 23,
            Opcode::Alloca => 24,
            Opcode::Load => 25,
            Opcode::Store => 26,
            Opcode::Gep => 27,
            Opcode::ICmp => 28,
            Opcode::FCmp => 29,
            Opcode::Trunc => 30,
            Opcode::SExt => 31,
            Opcode::ZExt => 32,
            Opcode::FpTrunc => 33,
            Opcode::FpExt => 34,
            Opcode::SiToFp => 35,
            Opcode::FpToSi => 36,
            Opcode::PtrToInt => 37,
            Opcode::IntToPtr => 38,
            Opcode::Bitcast => 39,
            Opcode::Select => 40,
            Opcode::Phi => 41,
            Opcode::Br => 42,
            Opcode::CondBr => 43,
            Opcode::Ret => 44,
            Opcode::Call => 45,
            Opcode::AtomicAdd => 46,
            Opcode::Barrier => 47,
        }
    }

    /// Number of distinct [`Opcode::feature_class`] values.
    pub const NUM_FEATURE_CLASSES: usize = 48;

    /// Does this opcode terminate a basic block?
    pub fn is_terminator(self) -> bool {
        matches!(self, Opcode::Br | Opcode::CondBr | Opcode::Ret)
    }

    /// Is this a binary integer arithmetic/logic opcode?
    pub fn is_int_binop(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::SDiv
                | Opcode::SRem
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::AShr
        )
    }

    /// Is this a binary float arithmetic opcode?
    pub fn is_float_binop(self) -> bool {
        matches!(
            self,
            Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::Pow
                | Opcode::FMin
                | Opcode::FMax
        )
    }

    /// Is this a cast opcode (one operand, result type differs)?
    pub fn is_cast(self) -> bool {
        matches!(
            self,
            Opcode::Trunc
                | Opcode::SExt
                | Opcode::ZExt
                | Opcode::FpTrunc
                | Opcode::FpExt
                | Opcode::SiToFp
                | Opcode::FpToSi
                | Opcode::PtrToInt
                | Opcode::IntToPtr
                | Opcode::Bitcast
        )
    }

    /// Textual mnemonic, used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::SDiv => "sdiv",
            Opcode::SRem => "srem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::AShr => "ashr",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FNeg => "fneg",
            Opcode::Sqrt => "sqrt",
            Opcode::Exp => "exp",
            Opcode::Log => "log",
            Opcode::Sin => "sin",
            Opcode::Cos => "cos",
            Opcode::FAbs => "fabs",
            Opcode::Pow => "pow",
            Opcode::FMin => "fmin",
            Opcode::FMax => "fmax",
            Opcode::Alloca => "alloca",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Gep => "gep",
            Opcode::ICmp => "icmp",
            Opcode::FCmp => "fcmp",
            Opcode::Trunc => "trunc",
            Opcode::SExt => "sext",
            Opcode::ZExt => "zext",
            Opcode::FpTrunc => "fptrunc",
            Opcode::FpExt => "fpext",
            Opcode::SiToFp => "sitofp",
            Opcode::FpToSi => "fptosi",
            Opcode::PtrToInt => "ptrtoint",
            Opcode::IntToPtr => "inttoptr",
            Opcode::Bitcast => "bitcast",
            Opcode::Select => "select",
            Opcode::Phi => "phi",
            Opcode::Br => "br",
            Opcode::CondBr => "condbr",
            Opcode::Ret => "ret",
            Opcode::Call => "call",
            Opcode::AtomicAdd => "atomicadd",
            Opcode::Barrier => "barrier",
        }
    }

    /// Inverse of [`Opcode::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::ALL.into_iter().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison predicate for `icmp`/`fcmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpPred {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<CmpPred> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            _ => return None,
        })
    }

    /// Evaluate the predicate on a pair of ordered values.
    pub fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }
    }
}

/// A compile-time constant value.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    Int(i64, Type),
    Float(f64, Type),
    Bool(bool),
    /// The null pointer of a given pointer type.
    Null(Type),
}

impl Constant {
    pub fn ty(&self) -> Type {
        match self {
            Constant::Int(_, t) | Constant::Float(_, t) | Constant::Null(t) => t.clone(),
            Constant::Bool(_) => Type::I1,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v, _) => write!(f, "{v}"),
            Constant::Float(v, _) => {
                // Always include a decimal point so the parser can
                // distinguish float from int literals.
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Null(_) => write!(f, "null"),
        }
    }
}

/// An instruction operand: an SSA value reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Result of another instruction in the same function.
    Instr(InstrId),
    /// The n-th function parameter.
    Param(u32),
    /// An entry in the function's constant table.
    Const(u32),
    /// A module-level global variable (by index).
    Global(u32),
}

/// One IR instruction.
///
/// Instructions live in a flat arena on the [`crate::Function`]; blocks
/// reference them by [`InstrId`]. Block targets of terminators are stored
/// in `succs` and phi incoming blocks in `phi_blocks` (parallel to `args`).
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    pub op: Opcode,
    /// Result type (`Void` for instructions with no result).
    pub ty: Type,
    /// SSA operands.
    pub args: Vec<Operand>,
    /// Successor blocks (terminators only): `Br` has one, `CondBr` two
    /// (then, else).
    pub succs: Vec<crate::module::BlockId>,
    /// For `Phi`: the predecessor block of each incoming value in `args`.
    pub phi_blocks: Vec<crate::module::BlockId>,
    /// For `ICmp`/`FCmp`: the predicate.
    pub pred: Option<CmpPred>,
    /// For `Call`: index of the callee in the module function table, or
    /// `None` for an external/unresolved callee named in `callee_name`.
    pub callee: Option<u32>,
    /// For `Call`: callee symbol name (always set for calls).
    pub callee_name: Option<String>,
}

impl Instr {
    /// A fresh instruction with the common fields; the exotic fields
    /// default to empty.
    pub fn new(op: Opcode, ty: Type, args: Vec<Operand>) -> Self {
        Instr {
            op,
            ty,
            args,
            succs: Vec::new(),
            phi_blocks: Vec::new(),
            pred: None,
            callee: None,
            callee_name: None,
        }
    }

    /// Does this instruction produce an SSA value?
    pub fn has_result(&self) -> bool {
        self.ty != Type::Void
    }

    /// Is this a memory access (load or store)?
    pub fn is_mem_access(&self) -> bool {
        matches!(self.op, Opcode::Load | Opcode::Store | Opcode::AtomicAdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_classes_cover_all_opcodes() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            let c = op.feature_class();
            assert!(c < Opcode::NUM_FEATURE_CLASSES, "{op:?} out of range");
            assert!(seen.insert(c), "duplicate feature class for {op:?}");
        }
        assert_eq!(seen.len(), Opcode::NUM_FEATURE_CLASSES);
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn cmp_pred_eval() {
        assert!(CmpPred::Lt.eval(1, 2));
        assert!(!CmpPred::Lt.eval(2, 2));
        assert!(CmpPred::Le.eval(2, 2));
        assert!(CmpPred::Ge.eval(3.0, 3.0));
        assert!(CmpPred::Ne.eval(1, 2));
        assert!(CmpPred::Eq.eval("a", "a"));
    }

    #[test]
    fn cmp_pred_mnemonic_round_trip() {
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Lt,
            CmpPred::Le,
            CmpPred::Gt,
            CmpPred::Ge,
        ] {
            assert_eq!(CmpPred::from_mnemonic(p.mnemonic()), Some(p));
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::CondBr.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Call.is_terminator());
        assert!(!Opcode::Load.is_terminator());
    }

    #[test]
    fn constant_display_and_type() {
        assert_eq!(Constant::Int(42, Type::I64).to_string(), "42");
        assert_eq!(Constant::Float(1.0, Type::F64).to_string(), "1.0");
        assert_eq!(Constant::Float(0.5, Type::F32).to_string(), "0.5");
        assert_eq!(Constant::Bool(true).to_string(), "true");
        assert_eq!(Constant::Bool(false).ty(), Type::I1);
        assert_eq!(Constant::Null(Type::F64.ptr()).ty(), Type::F64.ptr());
    }

    #[test]
    fn instr_result_and_memory_predicates() {
        let load = Instr::new(Opcode::Load, Type::F64, vec![Operand::Param(0)]);
        assert!(load.has_result());
        assert!(load.is_mem_access());
        let store = Instr::new(
            Opcode::Store,
            Type::Void,
            vec![Operand::Param(0), Operand::Param(1)],
        );
        assert!(!store.has_result());
        assert!(store.is_mem_access());
        let add = Instr::new(Opcode::Add, Type::I64, vec![]);
        assert!(!add.is_mem_access());
    }
}
