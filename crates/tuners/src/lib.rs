//! `mga-tuners` — baseline autotuners (§4.1.2).
//!
//! The paper compares the MGA tuner against three black-box autotuners,
//! each re-implemented here against the simulated objective:
//!
//! * [`opentuner::OpenTunerLike`] — OpenTuner (Ansel et al. 2014): an
//!   AUC-bandit meta-technique that arbitrates among search techniques
//!   (random sampling, coordinate hill climbing, and a genetic
//!   crossover of elites);
//! * [`ytopt::YtoptLike`] — ytopt (Balaprakash et al.): Bayesian
//!   optimization with a Gaussian-process surrogate (RBF kernel,
//!   Cholesky solves in [`linalg`]) and expected-improvement
//!   acquisition;
//! * [`bliss::BlissLike`] — BLISS (Roy et al. 2021): a pool of diverse
//!   lightweight surrogate models with bandit model selection.
//!
//! All tuners implement [`Tuner`] over a discrete [`OmpConfig`] space and
//! are driven through a budget-accounted [`Evaluator`], which also sums
//! the simulated wall-clock the tuner spends executing configurations —
//! the paper's §4.1.5 tuning-cost comparison.

pub mod bliss;
pub mod linalg;
pub mod opentuner;
pub mod ytopt;

use mga_kernels::spec::KernelSpec;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::{simulate, OmpConfig};

/// A discrete configuration search space with a feature encoding for
/// surrogate models.
#[derive(Debug, Clone)]
pub struct Space {
    pub configs: Vec<OmpConfig>,
}

impl Space {
    pub fn new(configs: Vec<OmpConfig>) -> Space {
        assert!(!configs.is_empty(), "empty search space");
        Space { configs }
    }

    pub fn len(&self) -> usize {
        self.configs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Normalized feature vector of a config (threads, schedule ordinal,
    /// log-chunk), for GP/ridge surrogates.
    pub fn features(&self, cfg: &OmpConfig) -> [f64; 3] {
        let max_t = self
            .configs
            .iter()
            .map(|c| c.threads)
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let max_chunk = self
            .configs
            .iter()
            .map(|c| c.chunk.max(1))
            .max()
            .unwrap_or(1) as f64;
        [
            cfg.threads as f64 / max_t,
            cfg.schedule as u32 as f64 / 2.0,
            (cfg.chunk.max(1) as f64).log2() / max_chunk.log2().max(1.0),
        ]
    }
}

/// Budget-accounted objective evaluation: counts calls and accumulates
/// the simulated runtime the tuner "spends" executing candidates.
pub struct Evaluator<'a> {
    spec: &'a KernelSpec,
    ws_bytes: f64,
    cpu: &'a CpuSpec,
    /// Number of objective evaluations performed.
    pub evals: usize,
    /// Total simulated seconds spent running candidate configurations.
    pub spent_seconds: f64,
    /// Fixed per-evaluation harness overhead (compile/launch), seconds.
    pub overhead_per_eval: f64,
}

impl<'a> Evaluator<'a> {
    pub fn new(spec: &'a KernelSpec, ws_bytes: f64, cpu: &'a CpuSpec) -> Evaluator<'a> {
        Evaluator {
            spec,
            ws_bytes,
            cpu,
            evals: 0,
            spent_seconds: 0.0,
            overhead_per_eval: 2.0,
        }
    }

    /// Run one configuration, returning its runtime (the objective to
    /// minimize).
    pub fn run(&mut self, cfg: &OmpConfig) -> f64 {
        self.evals += 1;
        let r = simulate(self.spec, self.ws_bytes, cfg, self.cpu);
        self.spent_seconds += r.runtime + self.overhead_per_eval;
        r.runtime
    }
}

/// A seed-parameterized tuner factory, as the experiment harness uses to
/// create one fresh tuner per (loop, input).
pub type TunerFactory = Box<dyn Fn(u64) -> Box<dyn Tuner> + Send + Sync>;

/// A black-box autotuner over a discrete space.
pub trait Tuner {
    /// Short display name ("ytopt", "OpenTuner", "BLISS").
    fn name(&self) -> &'static str;

    /// Spend up to `budget` evaluations and return the best configuration
    /// found.
    fn tune(&mut self, space: &Space, eval: &mut Evaluator<'_>, budget: usize) -> OmpConfig;
}

/// Pure random search (sanity baseline).
pub struct RandomSearch {
    pub seed: u64,
}

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn tune(&mut self, space: &Space, eval: &mut Evaluator<'_>, budget: usize) -> OmpConfig {
        let mut state = self.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut best = (space.configs[0], f64::INFINITY);
        for _ in 0..budget {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let cfg = space.configs[(state as usize) % space.len()];
            let t = eval.run(&cfg);
            if t < best.1 {
                best = (cfg, t);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_kernels::catalog::openmp_catalog;
    use mga_sim::openmp::{large_space, oracle_config};

    fn setup() -> (KernelSpec, CpuSpec) {
        let spec = openmp_catalog()
            .into_iter()
            .find(|s| s.app == "gemm")
            .unwrap();
        (spec, CpuSpec::skylake_4114())
    }

    #[test]
    fn evaluator_accounts_budget_and_time() {
        let (spec, cpu) = setup();
        let mut ev = Evaluator::new(&spec, 1e6, &cpu);
        let cfg = OmpConfig {
            threads: 4,
            schedule: mga_sim::openmp::Schedule::Static,
            chunk: 0,
        };
        let t1 = ev.run(&cfg);
        let t2 = ev.run(&cfg);
        assert_eq!(ev.evals, 2);
        assert_eq!(t1, t2, "objective must be deterministic");
        assert!(ev.spent_seconds >= 2.0 * ev.overhead_per_eval);
    }

    #[test]
    fn random_search_improves_with_budget() {
        let (spec, cpu) = setup();
        let space = Space::new(large_space());
        let ws = 4e6;
        let (_, oracle_t) = oracle_config(&spec, ws, &space.configs, &cpu);

        let mut small_ev = Evaluator::new(&spec, ws, &cpu);
        let cheap = RandomSearch { seed: 42 }.tune(&space, &mut small_ev, 3);
        let mut big_ev = Evaluator::new(&spec, ws, &cpu);
        let rich = RandomSearch { seed: 42 }.tune(&space, &mut big_ev, 60);
        let t_cheap = mga_sim::openmp::simulate(&spec, ws, &cheap, &cpu).runtime;
        let t_rich = mga_sim::openmp::simulate(&spec, ws, &rich, &cpu).runtime;
        assert!(t_rich <= t_cheap * 1.01, "more budget must not hurt");
        assert!(t_rich >= oracle_t * 0.999, "cannot beat the oracle");
    }

    #[test]
    fn space_features_are_normalized() {
        let space = Space::new(large_space());
        for cfg in &space.configs {
            let f = space.features(cfg);
            for x in f {
                assert!((0.0..=1.0).contains(&x), "feature {x} out of range");
            }
        }
    }
}
