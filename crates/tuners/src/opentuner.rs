//! OpenTuner-style search: an AUC-bandit meta-technique arbitrating
//! among sub-techniques (random, coordinate hill climbing, genetic
//! crossover), as in Ansel et al., PACT 2014.

use crate::{Evaluator, Space, Tuner};
use mga_sim::openmp::OmpConfig;

/// Simple xorshift PRNG so the tuner is self-contained and seedable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n.max(1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Technique {
    Random,
    HillClimb,
    Genetic,
}

const TECHNIQUES: [Technique; 3] = [Technique::Random, Technique::HillClimb, Technique::Genetic];

/// The OpenTuner-like tuner.
pub struct OpenTunerLike {
    pub seed: u64,
    /// AUC-bandit exploration constant.
    pub exploration: f64,
}

impl OpenTunerLike {
    pub fn new(seed: u64) -> OpenTunerLike {
        OpenTunerLike {
            seed,
            exploration: 1.4,
        }
    }

    /// Index distance in each config dimension; used by hill climbing.
    fn neighbors(space: &Space, idx: usize) -> Vec<usize> {
        let me = space.configs[idx];
        let mut out = Vec::new();
        for (j, c) in space.configs.iter().enumerate() {
            if j == idx {
                continue;
            }
            let same_dims = [
                c.threads == me.threads,
                c.schedule == me.schedule,
                c.chunk == me.chunk,
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            // A neighbor differs in exactly one dimension.
            if same_dims == 2 {
                out.push(j);
            }
        }
        out
    }
}

impl Tuner for OpenTunerLike {
    fn name(&self) -> &'static str {
        "OpenTuner"
    }

    fn tune(&mut self, space: &Space, eval: &mut Evaluator<'_>, budget: usize) -> OpenConfig {
        let mut rng = Rng(self.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let mut results: Vec<Option<f64>> = vec![None; space.len()];
        let mut order: Vec<usize> = Vec::new(); // evaluated, best-first maintained lazily
        let mut best = (0usize, f64::INFINITY);

        // Bandit state per technique: uses (count) and credit (recent
        // improvement indicator window, summed — the AUC proxy).
        let mut uses = [0usize; 3];
        let mut credit = [0.0f64; 3];

        for it in 0..budget.min(space.len() * 2) {
            // UCB1 selection over techniques.
            let tech = if let Some(&t) = TECHNIQUES.get(it) {
                t
            } else {
                let total: usize = uses.iter().sum();
                let mut pick = (Technique::Random, f64::MIN);
                for (k, &t) in TECHNIQUES.iter().enumerate() {
                    let mean = credit[k] / uses[k].max(1) as f64;
                    let bonus =
                        self.exploration * ((total as f64).ln() / uses[k].max(1) as f64).sqrt();
                    if mean + bonus > pick.1 {
                        pick = (t, mean + bonus);
                    }
                }
                pick.0
            };
            let k = TECHNIQUES.iter().position(|&t| t == tech).unwrap();
            uses[k] += 1;

            // Generate one candidate with the chosen technique.
            let cand = match tech {
                Technique::Random => rng.below(space.len()),
                Technique::HillClimb => {
                    if order.is_empty() {
                        rng.below(space.len())
                    } else {
                        let nbrs = Self::neighbors(space, best.0);
                        let fresh: Vec<usize> =
                            nbrs.into_iter().filter(|&j| results[j].is_none()).collect();
                        if fresh.is_empty() {
                            rng.below(space.len())
                        } else {
                            fresh[rng.below(fresh.len())]
                        }
                    }
                }
                Technique::Genetic => {
                    if order.len() < 2 {
                        rng.below(space.len())
                    } else {
                        // Crossover two elites dimension-wise; find the
                        // nearest existing config.
                        let a = space.configs[order[rng.below(order.len().min(4))]];
                        let b = space.configs[order[rng.below(order.len().min(4))]];
                        let child = OmpConfig {
                            threads: if rng.unit() < 0.5 {
                                a.threads
                            } else {
                                b.threads
                            },
                            schedule: if rng.unit() < 0.5 {
                                a.schedule
                            } else {
                                b.schedule
                            },
                            chunk: if rng.unit() < 0.5 { a.chunk } else { b.chunk },
                        };
                        space
                            .configs
                            .iter()
                            .position(|c| *c == child)
                            .unwrap_or_else(|| rng.below(space.len()))
                    }
                }
            };

            if results[cand].is_some() {
                // Duplicate: no new run, tiny negative credit.
                credit[k] -= 0.05;
                continue;
            }
            let t = eval.run(&space.configs[cand]);
            results[cand] = Some(t);
            order.push(cand);
            order.sort_by(|&a, &b| {
                results[a]
                    .unwrap()
                    .partial_cmp(&results[b].unwrap())
                    .unwrap()
            });
            if t < best.1 {
                best = (cand, t);
                credit[k] += 1.0;
            }
        }
        space.configs[best.0]
    }
}

/// Alias kept for readability of the trait signature.
pub type OpenConfig = OmpConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use mga_kernels::catalog::openmp_catalog;
    use mga_sim::cpu::CpuSpec;
    use mga_sim::openmp::{large_space, oracle_config, simulate};

    #[test]
    fn neighbors_differ_in_one_dimension() {
        let space = Space::new(large_space());
        let nbrs = OpenTunerLike::neighbors(&space, 0);
        assert!(!nbrs.is_empty());
        let me = space.configs[0];
        for j in nbrs {
            let c = space.configs[j];
            let diffs = [
                c.threads != me.threads,
                c.schedule != me.schedule,
                c.chunk != me.chunk,
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn opentuner_finds_decent_configs() {
        let specs = openmp_catalog();
        let cpu = CpuSpec::skylake_4114();
        let space = Space::new(large_space());
        let ws = 8e6;
        let mut ratio_sum = 0.0;
        let mut count = 0;
        for (k, spec) in specs.iter().step_by(9).enumerate() {
            let (_, oracle_t) = oracle_config(spec, ws, &space.configs, &cpu);
            let mut ev = Evaluator::new(spec, ws, &cpu);
            let c = OpenTunerLike::new(k as u64 + 1).tune(&space, &mut ev, 25);
            let t = simulate(spec, ws, &c, &cpu).runtime;
            assert!(t >= oracle_t * 0.999, "cannot beat oracle");
            ratio_sum += oracle_t / t;
            count += 1;
        }
        let mean_quality = ratio_sum / count as f64;
        assert!(
            mean_quality > 0.5,
            "OpenTuner-like quality {mean_quality} too poor"
        );
    }

    #[test]
    fn respects_budget() {
        let spec = openmp_catalog().into_iter().next().unwrap();
        let cpu = CpuSpec::skylake_4114();
        let space = Space::new(large_space());
        let mut ev = Evaluator::new(&spec, 1e6, &cpu);
        let _ = OpenTunerLike::new(3).tune(&space, &mut ev, 12);
        assert!(ev.evals <= 12);
    }
}
