//! BLISS-style tuning (Roy et al., PLDI 2021): a pool of diverse
//! lightweight surrogate models; a bandit picks which model proposes the
//! next configuration, so whichever model family fits this application
//! best ends up steering the search.

use crate::linalg::{ridge_fit, ridge_predict};
use crate::ytopt::{expected_improvement, Gp};
use crate::{Evaluator, Space, Tuner};
use mga_sim::openmp::OmpConfig;

/// One lightweight surrogate in the pool.
enum Model {
    /// GP with a given RBF length scale.
    Gp(f64),
    /// Ridge regression on the raw features.
    Ridge,
    /// Ridge regression on quadratic features.
    RidgeQuad,
}

fn quad_features(f: &[f64; 3]) -> [f64; 9] {
    [
        f[0],
        f[1],
        f[2],
        f[0] * f[0],
        f[1] * f[1],
        f[2] * f[2],
        f[0] * f[1],
        f[0] * f[2],
        f[1] * f[2],
    ]
}

/// The BLISS-like tuner.
pub struct BlissLike {
    pub seed: u64,
}

impl BlissLike {
    pub fn new(seed: u64) -> BlissLike {
        BlissLike { seed }
    }
}

impl Tuner for BlissLike {
    fn name(&self) -> &'static str {
        "BLISS"
    }

    fn tune(&mut self, space: &Space, eval: &mut Evaluator<'_>, budget: usize) -> OmpConfig {
        let models = [
            Model::Gp(0.25),
            Model::Gp(0.7),
            Model::Ridge,
            Model::RidgeQuad,
        ];
        let feats: Vec<[f64; 3]> = space.configs.iter().map(|c| space.features(c)).collect();
        let mut state = self.seed.wrapping_mul(0xD6E8FEB86659FD93) | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        let mut seen: Vec<usize> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut best = (space.configs[0], f64::INFINITY);
        let mut credit = [1.0f64; 4];
        let mut uses = [1.0f64; 4];

        for it in 0..budget {
            let idx = if it < 3 {
                (rand() as usize) % space.len()
            } else {
                // Thompson-ish model selection: sample proportionally to
                // credit rate.
                let rates: Vec<f64> = credit
                    .iter()
                    .zip(&uses)
                    .map(|(c, u)| (c / u).max(0.01))
                    .collect();
                let total: f64 = rates.iter().sum();
                let mut r = (rand() >> 11) as f64 / (1u64 << 53) as f64 * total;
                let mut mi = 0;
                for (k, rate) in rates.iter().enumerate() {
                    if r < *rate {
                        mi = k;
                        break;
                    }
                    r -= rate;
                }
                uses[mi] += 1.0;

                let xs: Vec<[f64; 3]> = seen.iter().map(|&i| feats[i]).collect();
                let ymax = ys.iter().cloned().fold(f64::MIN, f64::max).max(1e-30);
                let ys_n: Vec<f64> = ys.iter().map(|y| y / ymax).collect();
                let incumbent = best.1 / ymax;

                let pick = match &models[mi] {
                    Model::Gp(ls) => {
                        let mut gp = Gp::new(*ls, 1e-4);
                        gp.fit(&xs, &ys_n);
                        argmax_unseen(&feats, &seen, |f| {
                            let (m, v) = gp.predict(f);
                            expected_improvement(m, v, incumbent)
                        })
                    }
                    Model::Ridge => {
                        let flat: Vec<f64> = xs.iter().flatten().copied().collect();
                        let w = ridge_fit(&flat, xs.len(), 3, &ys_n, 1e-3);
                        argmax_unseen(&feats, &seen, |f| -ridge_predict(&w, f))
                    }
                    Model::RidgeQuad => {
                        let qx: Vec<f64> =
                            xs.iter().flat_map(|f| quad_features(f).to_vec()).collect();
                        let w = ridge_fit(&qx, xs.len(), 9, &ys_n, 1e-3);
                        argmax_unseen(&feats, &seen, |f| -ridge_predict(&w, &quad_features(f)))
                    }
                };
                let chosen = pick;
                // Remember which model proposed this candidate so we can
                // pay credit after evaluating.
                let t = eval.run(&space.configs[chosen]);
                seen.push(chosen);
                ys.push(t);
                if t < best.1 {
                    best = (space.configs[chosen], t);
                    credit[mi] += 1.0;
                }
                if seen.len() >= space.len() {
                    break;
                }
                continue;
            };
            if seen.contains(&idx) {
                continue;
            }
            let t = eval.run(&space.configs[idx]);
            seen.push(idx);
            ys.push(t);
            if t < best.1 {
                best = (space.configs[idx], t);
            }
            if seen.len() >= space.len() {
                break;
            }
        }
        best.0
    }
}

/// Index of the unseen feature point maximizing `score`.
fn argmax_unseen(feats: &[[f64; 3]], seen: &[usize], score: impl Fn(&[f64; 3]) -> f64) -> usize {
    let mut top = (0usize, f64::MIN);
    for (i, f) in feats.iter().enumerate() {
        if seen.contains(&i) {
            continue;
        }
        let s = score(f);
        if s > top.1 {
            top = (i, s);
        }
    }
    top.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_kernels::catalog::openmp_catalog;
    use mga_sim::cpu::CpuSpec;
    use mga_sim::openmp::{large_space, oracle_config, simulate};

    #[test]
    fn quad_features_expand() {
        let q = quad_features(&[1.0, 2.0, 3.0]);
        assert_eq!(q, [1.0, 2.0, 3.0, 1.0, 4.0, 9.0, 2.0, 3.0, 6.0]);
    }

    #[test]
    fn bliss_respects_budget_and_tracks_oracle() {
        let specs = openmp_catalog();
        let cpu = CpuSpec::skylake_4114();
        let space = Space::new(large_space());
        let ws = 8e6;
        let mut quality = 0.0;
        let mut count = 0;
        for (k, spec) in specs.iter().step_by(11).enumerate() {
            let (_, oracle_t) = oracle_config(spec, ws, &space.configs, &cpu);
            let mut ev = Evaluator::new(spec, ws, &cpu);
            let budget = 15;
            let c = BlissLike::new(k as u64 + 5).tune(&space, &mut ev, budget);
            assert!(ev.evals <= budget, "budget violated: {}", ev.evals);
            let t = simulate(spec, ws, &c, &cpu).runtime;
            assert!(t >= oracle_t * 0.999);
            quality += oracle_t / t;
            count += 1;
        }
        assert!(
            quality / count as f64 > 0.45,
            "BLISS quality too poor: {}",
            quality / count as f64
        );
    }

    #[test]
    fn bliss_is_deterministic_per_seed() {
        let spec = openmp_catalog()
            .into_iter()
            .find(|s| s.app == "srad")
            .unwrap();
        let cpu = CpuSpec::skylake_4114();
        let space = Space::new(large_space());
        let mut e1 = Evaluator::new(&spec, 1e7, &cpu);
        let a = BlissLike::new(9).tune(&space, &mut e1, 12);
        let mut e2 = Evaluator::new(&spec, 1e7, &cpu);
        let b = BlissLike::new(9).tune(&space, &mut e2, 12);
        assert_eq!(a, b);
    }
}
