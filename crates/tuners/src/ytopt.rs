//! ytopt-style Bayesian optimization: Gaussian-process surrogate with an
//! RBF kernel and expected-improvement acquisition over the discrete
//! configuration space.

use crate::linalg::{cholesky, solve_lower, solve_upper_t};
use crate::{Evaluator, Space, Tuner};
use mga_sim::openmp::OmpConfig;

/// A minimal GP regressor over 3-D config features.
pub struct Gp {
    pub length_scale: f64,
    pub noise: f64,
    xs: Vec<[f64; 3]>,
    ys: Vec<f64>,
    /// Cholesky factor of K + σ²I, and α = K⁻¹ y, refreshed on fit.
    chol: Vec<f64>,
    alpha: Vec<f64>,
    y_mean: f64,
}

impl Gp {
    pub fn new(length_scale: f64, noise: f64) -> Gp {
        Gp {
            length_scale,
            noise,
            xs: Vec::new(),
            ys: Vec::new(),
            chol: Vec::new(),
            alpha: Vec::new(),
            y_mean: 0.0,
        }
    }

    fn kernel(&self, a: &[f64; 3], b: &[f64; 3]) -> f64 {
        let mut d2 = 0.0;
        for i in 0..3 {
            let d = a[i] - b[i];
            d2 += d * d;
        }
        (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// Fit on all observations so far.
    pub fn fit(&mut self, xs: &[[f64; 3]], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len());
        self.xs = xs.to_vec();
        self.y_mean = ys.iter().sum::<f64>() / ys.len().max(1) as f64;
        self.ys = ys.iter().map(|y| y - self.y_mean).collect();
        let n = xs.len();
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                k[i * n + j] = self.kernel(&xs[i], &xs[j]);
            }
            k[i * n + i] += self.noise;
        }
        let mut jitter = 0.0;
        let l = loop {
            let mut kj = k.clone();
            if jitter > 0.0 {
                for i in 0..n {
                    kj[i * n + i] += jitter;
                }
            }
            if let Some(l) = cholesky(&kj, n) {
                break l;
            }
            jitter = if jitter == 0.0 { 1e-10 } else { jitter * 10.0 };
        };
        let y = solve_lower(&l, n, &self.ys);
        self.alpha = solve_upper_t(&l, n, &y);
        self.chol = l;
    }

    /// Posterior mean and variance at a point.
    pub fn predict(&self, x: &[f64; 3]) -> (f64, f64) {
        let n = self.xs.len();
        if n == 0 {
            return (self.y_mean, 1.0);
        }
        let kx: Vec<f64> = self.xs.iter().map(|xi| self.kernel(xi, x)).collect();
        let mean = self.y_mean + kx.iter().zip(&self.alpha).map(|(k, a)| k * a).sum::<f64>();
        // v = L⁻¹ kx; var = k(x,x) - vᵀv
        let v = solve_lower(&self.chol, n, &kx);
        let var = (1.0 + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var)
    }
}

/// Standard normal pdf/cdf for expected improvement.
fn phi(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn big_phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Abramowitz–Stegun erf approximation (|err| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement (minimization) of predicted `(mean, var)` over
/// incumbent `best`.
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sd = var.sqrt();
    if sd < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / sd;
    (best - mean) * big_phi(z) + sd * phi(z)
}

/// The ytopt-like tuner.
pub struct YtoptLike {
    pub seed: u64,
    /// Number of random warm-up evaluations before the GP takes over.
    pub warmup: usize,
}

impl YtoptLike {
    pub fn new(seed: u64) -> YtoptLike {
        YtoptLike { seed, warmup: 3 }
    }
}

impl Tuner for YtoptLike {
    fn name(&self) -> &'static str {
        "ytopt"
    }

    fn tune(&mut self, space: &Space, eval: &mut Evaluator<'_>, budget: usize) -> OmpConfig {
        let feats: Vec<[f64; 3]> = space.configs.iter().map(|c| space.features(c)).collect();
        let mut state = self.seed.wrapping_mul(0xA24BAED4963EE407) | 1;
        let rand_idx = |n: usize, state: &mut u64| {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            (*state as usize) % n
        };

        let mut seen: Vec<usize> = Vec::new();
        let mut xs: Vec<[f64; 3]> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut best = (space.configs[0], f64::INFINITY);

        for it in 0..budget {
            let idx = if it < self.warmup.min(budget) {
                // Random warm-up (distinct points).
                let mut i = rand_idx(space.len(), &mut state);
                let mut guard = 0;
                while seen.contains(&i) && guard < 50 {
                    i = rand_idx(space.len(), &mut state);
                    guard += 1;
                }
                i
            } else {
                // Fit GP, maximize EI over unseen configs.
                let mut gp = Gp::new(0.4, 1e-4);
                // Normalize objectives to unit scale for GP stability.
                let ymax = ys.iter().cloned().fold(f64::MIN, f64::max).max(1e-30);
                let ys_n: Vec<f64> = ys.iter().map(|y| y / ymax).collect();
                gp.fit(&xs, &ys_n);
                let incumbent = best.1 / ymax;
                let mut top = (0usize, f64::MIN);
                for (i, f) in feats.iter().enumerate() {
                    if seen.contains(&i) {
                        continue;
                    }
                    let (m, v) = gp.predict(f);
                    let ei = expected_improvement(m, v, incumbent);
                    if ei > top.1 {
                        top = (i, ei);
                    }
                }
                top.0
            };
            seen.push(idx);
            let t = eval.run(&space.configs[idx]);
            xs.push(feats[idx]);
            ys.push(t);
            if t < best.1 {
                best = (space.configs[idx], t);
            }
            if seen.len() >= space.len() {
                break;
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_kernels::catalog::openmp_catalog;
    use mga_sim::cpu::CpuSpec;
    use mga_sim::openmp::{large_space, oracle_config, simulate};

    #[test]
    fn erf_and_phi_sane() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((big_phi(0.0) - 0.5).abs() < 1e-9);
        assert!(big_phi(3.0) > 0.99);
        assert!(phi(0.0) > phi(1.0));
    }

    #[test]
    fn ei_prefers_low_mean_and_high_variance() {
        let base = expected_improvement(1.0, 0.01, 1.0);
        let lower_mean = expected_improvement(0.5, 0.01, 1.0);
        let higher_var = expected_improvement(1.0, 0.5, 1.0);
        assert!(lower_mean > base);
        assert!(higher_var > base);
    }

    #[test]
    fn gp_interpolates_training_points() {
        let xs = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let ys = vec![1.0, 2.0, 3.0];
        let mut gp = Gp::new(0.5, 1e-6);
        gp.fit(&xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.05, "mean {m} vs {y}");
            assert!(v < 0.1, "variance at training point too high: {v}");
        }
        // Far point: high variance, mean near prior.
        let (_, v) = gp.predict(&[5.0, 5.0, 5.0]);
        assert!(v > 0.5);
    }

    #[test]
    fn ytopt_beats_random_at_equal_budget() {
        let specs = openmp_catalog();
        let cpu = CpuSpec::skylake_4114();
        let space = Space::new(large_space());
        let ws = 8e6;
        let mut ytopt_total = 0.0;
        let mut random_total = 0.0;
        for (k, spec) in specs.iter().step_by(7).enumerate() {
            let budget = 10;
            let mut ev1 = Evaluator::new(spec, ws, &cpu);
            let c1 = YtoptLike::new(k as u64).tune(&space, &mut ev1, budget);
            assert!(ev1.evals <= budget);
            let mut ev2 = Evaluator::new(spec, ws, &cpu);
            let c2 = crate::RandomSearch { seed: k as u64 }.tune(&space, &mut ev2, budget);
            ytopt_total += simulate(spec, ws, &c1, &cpu).runtime;
            random_total += simulate(spec, ws, &c2, &cpu).runtime;
        }
        assert!(
            ytopt_total <= random_total * 1.05,
            "BO ({ytopt_total:.4}) should be at least as good as random ({random_total:.4})"
        );
    }

    #[test]
    fn ytopt_cannot_beat_oracle() {
        let spec = openmp_catalog()
            .into_iter()
            .find(|s| s.app == "hotspot")
            .unwrap();
        let cpu = CpuSpec::skylake_4114();
        let space = Space::new(large_space());
        let ws = 2e7;
        let (_, oracle_t) = oracle_config(&spec, ws, &space.configs, &cpu);
        let mut ev = Evaluator::new(&spec, ws, &cpu);
        let c = YtoptLike::new(1).tune(&space, &mut ev, 20);
        let t = simulate(&spec, ws, &c, &cpu).runtime;
        assert!(t >= oracle_t * 0.999);
    }
}
