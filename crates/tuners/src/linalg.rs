//! Small dense linear algebra for the surrogate models: Cholesky
//! factorization, triangular solves, and ridge regression.

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix (row-major, `n × n`). Returns the lower factor, or `None` when
/// the matrix is not positive definite.
pub fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve `L·y = b` (lower triangular).
pub fn solve_lower(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    y
}

/// Solve `Lᵀ·x = y` (upper triangular via the lower factor).
pub fn solve_upper_t(l: &[f64], n: usize, y: &[f64]) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

/// Solve `A·x = b` for SPD `A` via Cholesky, adding diagonal jitter until
/// the factorization succeeds.
pub fn spd_solve(a: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut jitter = 0.0;
    loop {
        let mut aj = a.to_vec();
        if jitter > 0.0 {
            for i in 0..n {
                aj[i * n + i] += jitter;
            }
        }
        if let Some(l) = cholesky(&aj, n) {
            let y = solve_lower(&l, n, b);
            return solve_upper_t(&l, n, &y);
        }
        jitter = if jitter == 0.0 { 1e-10 } else { jitter * 10.0 };
        assert!(jitter < 1.0, "matrix hopelessly indefinite");
    }
}

/// Ridge regression: `w = (XᵀX + λI)⁻¹ Xᵀ y` for `X` row-major
/// `m × d` (a column of ones is appended internally for the intercept).
pub fn ridge_fit(x: &[f64], m: usize, d: usize, y: &[f64], lambda: f64) -> Vec<f64> {
    let dd = d + 1; // + intercept
    let mut xtx = vec![0.0; dd * dd];
    let mut xty = vec![0.0; dd];
    let feat = |r: usize, c: usize| -> f64 {
        if c < d {
            x[r * d + c]
        } else {
            1.0
        }
    };
    for (r, &yr) in y.iter().enumerate().take(m) {
        for i in 0..dd {
            xty[i] += feat(r, i) * yr;
            for j in 0..dd {
                xtx[i * dd + j] += feat(r, i) * feat(r, j);
            }
        }
    }
    for i in 0..dd {
        xtx[i * dd + i] += lambda;
    }
    spd_solve(&xtx, dd, &xty)
}

/// Predict with ridge weights (last weight is the intercept).
pub fn ridge_predict(w: &[f64], x: &[f64]) -> f64 {
    let d = w.len() - 1;
    let mut acc = w[d];
    for i in 0..d {
        acc += w[i] * x[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity() {
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let l = cholesky(&eye, 2).unwrap();
        assert_eq!(l, eye);
    }

    #[test]
    fn cholesky_reconstructs() {
        // A = [[4,2],[2,3]] → L = [[2,0],[1,sqrt(2)]]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        // L Lᵀ == A
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += l[i * 2 + k] * l[j * 2 + k];
                }
                assert!((s - a[i * 2 + j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn spd_solve_solves() {
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![10.0, 9.0];
        let x = spd_solve(&a, 2, &b);
        // Check A x = b.
        assert!((4.0 * x[0] + 2.0 * x[1] - 10.0).abs() < 1e-9);
        assert!((2.0 * x[0] + 3.0 * x[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_recovers_linear_function() {
        // y = 2 x0 - 3 x1 + 5
        let xs: Vec<[f64; 2]> = (0..20)
            .map(|i| [(i % 5) as f64 / 4.0, (i / 5) as f64 / 3.0])
            .collect();
        let x: Vec<f64> = xs.iter().flatten().copied().collect();
        let y: Vec<f64> = xs.iter().map(|p| 2.0 * p[0] - 3.0 * p[1] + 5.0).collect();
        let w = ridge_fit(&x, 20, 2, &y, 1e-8);
        assert!((w[0] - 2.0).abs() < 1e-3, "{w:?}");
        assert!((w[1] + 3.0).abs() < 1e-3);
        assert!((w[2] - 5.0).abs() < 1e-3);
        let p = ridge_predict(&w, &[0.5, 0.5]);
        assert!((p - (1.0 - 1.5 + 5.0)).abs() < 1e-3);
    }
}
